package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/obs"
)

// metricsSnap is one scrape of a waziserve /metrics endpoint, reduced to
// the lookups the server-side table needs.
type metricsSnap struct {
	fams map[string]*obs.PromFamily
}

// scrapeMetrics GETs and parses a Prometheus text endpoint.
func scrapeMetrics(url string) (*metricsSnap, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scraping %s: status %d", url, resp.StatusCode)
	}
	fams, err := obs.ParsePromText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", url, err)
	}
	return &metricsSnap{fams: fams}, nil
}

// value returns the first sample of a plain counter/gauge family, 0 when
// absent.
func (m *metricsSnap) value(name string) float64 {
	f, ok := m.fams[name]
	if !ok {
		return 0
	}
	for _, s := range f.Samples {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// histogram collapses a histogram family's cumulative _bucket samples
// (summed across label sets, e.g. routes) into ascending per-bucket counts
// ready for obs.QuantileFromBuckets, plus the total observation count.
func (m *metricsSnap) histogram(name string) (bounds []float64, counts []int64, total int64) {
	byLe := map[float64]float64{}
	f, ok := m.fams[name]
	if !ok {
		return nil, nil, 0
	}
	for _, s := range f.Samples {
		switch s.Name {
		case name + "_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				continue
			}
			byLe[le] += s.Value
		case name + "_count":
			total += int64(s.Value)
		}
	}
	for le := range byLe {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	counts = make([]int64, len(bounds))
	prev := 0.0
	for i, le := range bounds {
		counts[i] = int64(byLe[le] - prev) // de-accumulate: cumulative -> per-bucket
		prev = byLe[le]
	}
	return bounds, counts, total
}

// histSum returns a histogram family's _sum sample (summed across label
// sets), 0 when absent.
func (m *metricsSnap) histSum(name string) float64 {
	f, ok := m.fams[name]
	if !ok {
		return 0
	}
	sum := 0.0
	for _, s := range f.Samples {
		if s.Name == name+"_sum" {
			sum += s.Value
		}
	}
	return sum
}

// histDeltaQuantile estimates a quantile of a histogram family over the
// window between two scrapes.
func histDeltaQuantile(before, after *metricsSnap, name string, q float64) (float64, int64) {
	b0, c0, n0 := before.histogram(name)
	b1, c1, n1 := after.histogram(name)
	if len(b1) == 0 {
		return 0, 0
	}
	d := make([]int64, len(c1))
	copy(d, c1)
	if len(b0) == len(b1) {
		for i := range d {
			d[i] -= c0[i]
		}
		n1 -= n0
	}
	return obs.QuantileFromBuckets(b1, d, q), n1
}

// serverMetricsTable folds the before/after scrape pair into a wazi-bench
// table so server-side observations land in the same report as the
// client-side load numbers.
func serverMetricsTable(before, after *metricsSnap) harness.Table {
	p95, reqs := histDeltaQuantile(before, after, "wazi_http_request_seconds", 0.95)
	p50, _ := histDeltaQuantile(before, after, "wazi_http_request_seconds", 0.50)
	gcP95, _ := histDeltaQuantile(before, after, "wazi_go_gc_pause_seconds", 0.95)

	dHits := after.value("wazi_cache_hits_total") - before.value("wazi_cache_hits_total")
	dMiss := after.value("wazi_cache_misses_total") - before.value("wazi_cache_misses_total")
	hitRate := 0.0
	if dHits+dMiss > 0 {
		hitRate = 100 * dHits / (dHits + dMiss)
	}
	dPasses := after.value("wazi_coalesced_passes_total") - before.value("wazi_coalesced_passes_total")
	dReads := after.value("wazi_coalesced_reads_total") - before.value("wazi_coalesced_reads_total")
	readsPerPass := 0.0
	if dPasses > 0 {
		readsPerPass = dReads / dPasses
	}

	rows := [][]string{
		{"http requests (window)", fmt.Sprintf("%d", reqs)},
		{"http p50 (ms)", fmt.Sprintf("%.3f", p50*1e3)},
		{"http p95 (ms)", fmt.Sprintf("%.3f", p95*1e3)},
		{"shed (429s)", fmt.Sprintf("%.0f", after.value("wazi_http_shed_total")-before.value("wazi_http_shed_total"))},
		{"coalesced reads/pass", fmt.Sprintf("%.2f", readsPerPass)},
		{"cache hit rate (%)", fmt.Sprintf("%.1f", hitRate)},
		{"gc pause p95 (ms)", fmt.Sprintf("%.3f", gcP95*1e3)},
		{"gc pause total (ms)", fmt.Sprintf("%.3f", (after.histSum("wazi_go_gc_pause_seconds")-before.histSum("wazi_go_gc_pause_seconds"))*1e3)},
		{"gc pause slo breaches", fmt.Sprintf("%.0f", after.value("wazi_gc_pause_slo_breaches_total")-before.value("wazi_gc_pause_slo_breaches_total"))},
		{"heap alloc (MB)", fmt.Sprintf("%.1f", after.value("wazi_go_heap_alloc_bytes")/(1<<20))},
		{"goroutines", fmt.Sprintf("%.0f", after.value("wazi_go_goroutines"))},
		{"slow queries", fmt.Sprintf("%.0f", after.value("wazi_slowlog_recorded_total")-before.value("wazi_slowlog_recorded_total"))},
		{"profile captures", fmt.Sprintf("%.0f", after.value("wazi_profile_captures_total")-before.value("wazi_profile_captures_total"))},
	}
	return harness.Table{
		ID:     "server-metrics",
		Title:  "server-side metrics scraped from /metrics (deltas over the run)",
		Header: []string{"Metric", "Value"},
		Rows:   rows,
		Notes: []string{
			"Quantiles are interpolated from histogram bucket deltas between the pre- and post-run scrape.",
			"heap/goroutines are point-in-time values at the final scrape.",
		},
	}
}
