// Command waziload replays workload scenario suites against a running
// waziserve instance and reports serving throughput and latency through the
// same wazi-bench/v1 machinery as the in-process experiments, so
// over-the-wire numbers land in the same BENCH_*.json trajectory.
//
// Usage:
//
//	waziload -addr 127.0.0.1:8080 -suite zipfian -clients 64 -duration 2s
//	waziload -addr $(cat port.txt) -mode both -json BENCH_serving_smoke.json
//
// Modes: "single" replays one op per request on the per-op endpoints,
// "batch" folds -batch consecutive ops into each /v1/batch request, and
// "both" (the default) measures the two back to back — the resulting table
// is the per-request-vs-batch comparison of docs/SERVING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/server"
	"github.com/wazi-index/wazi/internal/workload"
)

func main() {
	os.Exit(run())
}

// loadConfig is recorded in the report so a BENCH file is self-describing.
type loadConfig struct {
	Addr     string  `json:"addr"`
	Suite    string  `json:"suite"`
	Region   string  `json:"region"`
	Ops      int     `json:"ops"`
	Sel      float64 `json:"sel"`
	Seed     int64   `json:"seed"`
	Clients  int     `json:"clients"`
	Batch    int     `json:"batch"`
	Duration string  `json:"duration"`
	Mode     string  `json:"mode"`
}

func run() int {
	fs := flag.NewFlagSet("waziload", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "waziserve address (host:port or http:// URL)")
		suite    = fs.String("suite", "zipfian", "workload scenario suite to replay (see internal/workload.Suites)")
		region   = fs.String("region", "NewYork", "region whose workload shape to replay")
		n        = fs.Int("n", 2_000, "operations in the replay stream (cycled for the whole duration)")
		sel      = fs.Float64("sel", 0.0256e-2, "query selectivity (fraction of data-space area)")
		seed     = fs.Int64("seed", 1, "workload seed")
		clients  = fs.Int("clients", 64, "concurrent client goroutines")
		duration = fs.Duration("duration", 2*time.Second, "wall budget per mode")
		batch    = fs.Int("batch", 32, "ops per /v1/batch request in batch mode")
		mode     = fs.String("mode", "both", "single, batch, or both")
		jsonPath = fs.String("json", "", "write a wazi-bench/v1 report to this path")
		quiet    = fs.Bool("quiet", false, "suppress the table; print only summary lines")
		metrics  = fs.String("metrics-url", "", "scrape this /metrics endpoint before and after the run and fold server-side columns into the report (empty = skip; \"auto\" derives it from -addr)")
	)
	fs.Parse(os.Args[1:])
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "waziload: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *mode != "single" && *mode != "batch" && *mode != "both" {
		fmt.Fprintf(os.Stderr, "waziload: -mode must be single, batch, or both (got %q)\n", *mode)
		return 2
	}

	r, found := dataset.RegionByName(*region)
	if !found {
		fmt.Fprintf(os.Stderr, "waziload: unknown region %q (want CaliNev, NewYork, Japan, or Iberia)\n", *region)
		return 2
	}
	ws, ok := workload.SuiteByName(*suite)
	if !ok {
		var names []string
		for _, s := range workload.Suites() {
			names = append(names, s.Name)
		}
		fmt.Fprintf(os.Stderr, "waziload: unknown suite %q (want %s)\n", *suite, strings.Join(names, ", "))
		return 2
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if err := server.WaitHealthy(base, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "waziload:", err)
		return 1
	}

	qs := ws.Queries(r, *n, *sel, *seed)
	ins := workload.InsertBatch(*n/4+1, *seed+1)
	ops := workload.ToWire(workload.MixedOps(qs, ins, ws.WriteRatio, *seed+2))

	cfg := loadConfig{
		Addr: base, Suite: ws.Name, Region: r.String(), Ops: *n, Sel: *sel, Seed: *seed,
		Clients: *clients, Batch: *batch, Duration: duration.String(), Mode: *mode,
	}
	reporters := []harness.Reporter{&harness.TextReporter{W: os.Stdout, Quiet: *quiet}}
	if *jsonPath != "" {
		reporters = append(reporters, &harness.JSONReporter{Path: *jsonPath})
	}
	hrun := harness.NewRun(harness.Options{Suite: "serving-http"}, cfg, reporters...)

	metricsURL := *metrics
	if metricsURL == "auto" {
		metricsURL = base + "/metrics"
	}

	var results []server.LoadResult
	var loadErr error
	hrun.Experiment("serving-http", func() []harness.Table {
		results = results[:0]
		var before *metricsSnap
		if metricsURL != "" {
			var err error
			if before, err = scrapeMetrics(metricsURL); err != nil {
				loadErr = err
				return nil
			}
		}
		if *mode == "single" || *mode == "both" {
			res, err := server.RunLoad(base, ops, server.LoadOptions{Clients: *clients, Duration: *duration, Batch: 1})
			if err != nil {
				loadErr = err
				return nil
			}
			results = append(results, res)
		}
		if *mode == "batch" || *mode == "both" {
			res, err := server.RunLoad(base, ops, server.LoadOptions{Clients: *clients, Duration: *duration, Batch: *batch})
			if err != nil {
				loadErr = err
				return nil
			}
			results = append(results, res)
		}
		tables := []harness.Table{server.LoadTable("serving-http", ws.Name, *clients, results)}
		if before != nil {
			after, err := scrapeMetrics(metricsURL)
			if err != nil {
				loadErr = err
				return nil
			}
			tables = append(tables, serverMetricsTable(before, after))
		}
		return tables
	})
	if loadErr != nil {
		fmt.Fprintln(os.Stderr, "waziload:", loadErr)
		return 1
	}
	if _, err := hrun.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "waziload:", err)
		return 1
	}
	if *jsonPath != "" {
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if len(results) == 2 {
		fmt.Printf("batch/single throughput: %.2fx (%.0f vs %.0f ops/s)\n",
			results[1].OpsPerSec/results[0].OpsPerSec, results[1].OpsPerSec, results[0].OpsPerSec)
	}
	return 0
}
