// Command waziserve serves a WaZI Sharded index over HTTP — the network
// face of the build-offline/serve-online deployment model. It builds (or
// warm-starts) the index, exposes the /v1/* endpoints with request
// coalescing and admission control, and on SIGTERM/SIGINT drains in-flight
// requests and writes a snapshot so the next start skips construction
// entirely.
//
// Usage:
//
//	waziserve -region NewYork -scale 200000 -snapshot wazi.snap
//	waziserve -data points.csv -shards 16 -addr :9000
//	waziserve -addr 127.0.0.1:0 -addr-file port.txt   # scripts read the bound address
//
// On start, if -snapshot names an existing file the index is restored from
// it (no rebuild); otherwise the data comes from -data (CSV "x,y" lines) or
// the synthetic -region generator, with a skewed training workload sized by
// -train. With -wal-dir every acknowledged write is appended to a
// write-ahead log before the response, and a restart over the same
// directory replays the tail — kill -9 loses nothing acknowledged (see
// docs/DURABILITY.md). See docs/SERVING.md for endpoint shapes and tuning.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/server"
	"github.com/wazi-index/wazi/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("waziserve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (host:0 picks a random port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening")
		snapshot = fs.String("snapshot", "", "warm-start snapshot: loaded on boot when present, written on graceful shutdown")
		dataPath = fs.String("data", "", "CSV point file (one \"x,y\" line per point); empty = synthetic -region data")
		region   = fs.String("region", "NewYork", "synthetic dataset region (CaliNev, NewYork, Japan, Iberia)")
		scale    = fs.Int("scale", 100_000, "synthetic dataset size")
		train    = fs.Int("train", 2_000, "training workload size (skewed check-in queries)")
		sel      = fs.Float64("sel", 0.0256e-2, "training query selectivity (fraction of data-space area)")
		seed     = fs.Int64("seed", 1, "seed for synthetic data and training workload")
		shards   = fs.Int("shards", 0, "shard count (0 = GOMAXPROCS, capped at 64); ignored on warm start")
		workers  = fs.Int("workers", 0, "fan-out worker pool size (0 = GOMAXPROCS)")
		inflight = fs.Int("max-inflight", 0, "admitted concurrent requests (0 = 4x GOMAXPROCS)")
		queue    = fs.Int("max-queue", 0, "requests waiting for admission before 429s (0 = 4x max-inflight)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		storeDir = fs.String("storage-dir", "", "disk-resident leaf pages: per-shard page files under this directory (empty = RAM-resident)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory: acknowledged writes are logged and replayed on restart (empty = no WAL)")
		walSync  = fs.String("wal-sync", "group", "WAL durability policy: group (batched fsync), always (fsync every write), none (page-cache only); needs -wal-dir")
		cachePgs = fs.Int("cache-pages", 0, "block-cache capacity per shard, in pages (0 = default 1024); needs -storage-dir")
		logEvery = fs.Duration("log-interval", 0, "log a one-line ops summary (qps, p95, cache hit rate, heap) this often; 0 disables")
		slowQ    = fs.Duration("slow-query", 0, "slow-query log threshold for /debug/slowlog (0 = default 250ms, negative records everything)")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving port")
		profDir  = fs.String("profile-dir", "", "anomaly-triggered profile capture: write CPU+heap pprof captures here on slow-query or GC-pause-SLO breaches (empty = disabled); browse via /debug/profilez")
		profMax  = fs.Int("profile-max", 0, "captures retained in the on-disk ring before the oldest is pruned (0 = default 8); needs -profile-dir")
		profCool = fs.Duration("profile-cooldown", 0, "minimum spacing between captures (0 = default 30s, negative = none); needs -profile-dir")
		profCPU  = fs.Duration("profile-cpu", 0, "CPU profile duration per capture (0 = default 1s); needs -profile-dir")
		gcSLO    = fs.Duration("gc-pause-slo", 0, "GC pause SLO: pauses at or above this count as breaches in /metrics and trigger captures (0 = disabled)")
	)
	fs.Parse(os.Args[1:])
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "waziserve: unexpected arguments %q\n", fs.Args())
		return 2
	}
	logger := log.New(os.Stderr, "waziserve: ", log.LstdFlags)

	idx, how, err := openIndex(*snapshot, *dataPath, *region, *scale, *train, *sel, *seed, *shards, *workers, *storeDir, *cachePgs, *walDir, *walSync)
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer idx.Close()
	logger.Printf("%s: %s", how, idx.Describe())
	if ws := idx.WALStats(); ws.Enabled {
		logger.Printf("wal: dir=%s sync=%s recovered_records=%d recovered_seq=%d torn=%v",
			ws.Dir, ws.Sync, ws.RecoveredRecords, ws.RecoveredSeq, ws.RecoveredTorn)
	}

	srv := server.New(server.Sharded(idx), server.Config{
		MaxInflight:        *inflight,
		MaxQueue:           *queue,
		SnapshotPath:       *snapshot,
		DrainTimeout:       *drain,
		SlowQueryThreshold: *slowQ,
		Pprof:              *pprofOn,
		ProfileDir:         *profDir,
		ProfileMaxCaptures: *profMax,
		ProfileCooldown:    *profCool,
		ProfileCPUDuration: *profCPU,
		GCPauseSLO:         *gcSLO,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *logEvery > 0 {
		go func() {
			tick := time.NewTicker(*logEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					logger.Print(srv.StatsLine())
				}
			}
		}()
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(ctx, *addr, ready) }()
	select {
	case bound := <-ready:
		logger.Printf("listening on %s", bound)
		if *addrFile != "" {
			if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
				logger.Printf("writing -addr-file: %v", err)
				stop()
				<-errc
				return 1
			}
		}
	case err := <-errc:
		logger.Printf("listen on %s: %v", *addr, err)
		return 1
	}

	select {
	case <-ctx.Done():
		logger.Print("signal received; draining and writing snapshot")
	case err := <-errc:
		// The listener died without a signal (e.g. a permanent accept
		// failure); exit loudly instead of lingering as a zombie.
		logger.Printf("serving failed: %v", err)
		return 1
	}
	if err := <-errc; err != nil {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	logger.Printf("final: %s", srv.CountersLine())
	if *snapshot != "" {
		logger.Printf("snapshot written to %s", *snapshot)
	}
	logger.Print("bye")
	return 0
}

// openIndex warm-starts from a snapshot when one exists, otherwise builds
// from CSV data or the synthetic region generator.
func openIndex(snapshot, dataPath, region string, scale, train int, sel float64, seed int64, shards, workers int, storageDir string, cachePages int, walDir, walSync string) (*wazi.Sharded, string, error) {
	opts := []wazi.ShardedOption{}
	if workers > 0 {
		opts = append(opts, wazi.WithWorkers(workers))
	}
	if storageDir != "" {
		opts = append(opts, wazi.WithShardedStorage(storageDir, cachePages))
	}
	if walDir != "" {
		opts = append(opts, wazi.WithWAL(walDir), wazi.WithWALSync(walSync))
	}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			idx, err := wazi.LoadSharded(f, opts...)
			if err != nil {
				return nil, "", fmt.Errorf("loading snapshot %s: %w", snapshot, err)
			}
			return idx, "warm start from " + snapshot, nil
		} else if !os.IsNotExist(err) {
			return nil, "", fmt.Errorf("opening snapshot %s: %w", snapshot, err)
		}
	}

	var (
		pts []wazi.Point
		err error
	)
	r, found := dataset.RegionByName(region)
	if !found {
		return nil, "", fmt.Errorf("unknown region %q (want CaliNev, NewYork, Japan, or Iberia)", region)
	}
	how := ""
	if dataPath != "" {
		pts, err = readCSVPoints(dataPath)
		if err != nil {
			return nil, "", err
		}
		how = fmt.Sprintf("cold start from %s (%d points)", dataPath, len(pts))
	} else {
		pts = dataset.Generate(r, scale, seed)
		how = fmt.Sprintf("cold start, synthetic %s x%d", r, scale)
	}
	qs := workload.Skewed(r, train, sel, seed+1)
	if shards > 0 {
		opts = append(opts, wazi.WithShards(shards))
	}
	idx, err := wazi.NewSharded(pts, qs, opts...)
	if err != nil {
		return nil, "", fmt.Errorf("building index: %w", err)
	}
	return idx, how, nil
}

// readCSVPoints parses one "x,y" (or "x y") point per line; blank lines and
// #-comments are skipped.
func readCSVPoints(path string) ([]wazi.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []wazi.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"x,y\", got %q", path, line, text)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad x %q: %w", path, line, fields[0], err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad y %q: %w", path, line, fields[1], err)
		}
		pts = append(pts, wazi.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return pts, nil
}
