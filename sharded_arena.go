package wazi

import (
	"sync"

	"github.com/wazi-index/wazi/internal/obs"
)

// maxArenaPoints bounds the per-slot capacity an arena carries back into the
// pool. One pathological query (a full-domain range over a huge dataset) must
// not pin its high-water buffers forever, so slots that grew past this are
// dropped at release and rebuilt lazily; everything below it is retained,
// which is what makes steady-state reads allocation-free.
const maxArenaPoints = 1 << 16

// queryArena is the reusable state of one fan-out read: the target list, one
// scratch buffer per target for parallel workers to append into, the count
// slots, and the kNN merge heap. Arenas are pooled, and the per-query worker
// closures (rangeFn, countFn, knnFn) are bound once when the arena is
// created — a pooled arena re-pointed at a new query therefore allocates
// nothing, which is the property the kernel-allocs experiment ratchets.
//
// An arena is owned by exactly one query from get to release. During a
// pool.Run fan-out its slices are shared across workers, but each worker
// touches only its own index, so the only synchronization needed is Run's
// own completion barrier.
type queryArena struct {
	s    *Sharded
	snap *shardedSnapshot
	r    Rect
	q    Point
	k    int
	tr   *obs.QueryTrace

	targets []int
	bufs    [][]Point
	counts  []int
	heap    []Point

	rangeFn func(int)
	countFn func(int)
	knnFn   func(int)
}

var arenaPool = sync.Pool{New: func() any {
	a := &queryArena{}
	a.rangeFn = func(ti int) {
		si := a.targets[ti]
		t0, live := a.s.scanStart(a.tr)
		dst := shardRange(a.snap.shards[si], a.r, a.bufs[ti][:0])
		if live {
			a.s.endScan(a.tr, si, t0, len(dst))
		}
		a.bufs[ti] = dst
	}
	a.countFn = func(ti int) {
		si := a.targets[ti]
		t0, live := a.s.scanStart(a.tr)
		n := shardCount(a.snap.shards[si], a.r)
		if live {
			a.s.endScan(a.tr, si, t0, n)
		}
		a.counts[ti] = n
	}
	a.knnFn = func(ti int) {
		si := a.targets[ti]
		t0, live := a.s.scanStart(a.tr)
		dst := shardKNNAppend(a.bufs[ti][:0], a.snap.shards[si], a.q, a.k)
		if live {
			a.s.endScan(a.tr, si, t0, len(dst))
		}
		a.bufs[ti] = dst
	}
	return a
}}

// getArena borrows an arena and points it at one query's snapshot and trace.
func (s *Sharded) getArena(snap *shardedSnapshot, tr *obs.QueryTrace) *queryArena {
	a := arenaPool.Get().(*queryArena)
	a.s, a.snap, a.tr = s, snap, tr
	return a
}

// release truncates the arena's buffers (dropping oversized ones, see
// maxArenaPoints) and returns it to the pool. The snapshot reference is
// cleared so a pooled arena never pins retired shard memory.
func (a *queryArena) release() {
	a.s, a.snap, a.tr = nil, nil, nil
	a.targets = a.targets[:0]
	bufs := a.bufs[:cap(a.bufs)]
	for i := range bufs {
		if cap(bufs[i]) > maxArenaPoints {
			bufs[i] = nil
		} else {
			bufs[i] = bufs[i][:0]
		}
	}
	if cap(a.heap) > maxArenaPoints {
		a.heap = nil
	} else {
		a.heap = a.heap[:0]
	}
	arenaPool.Put(a)
}

// ensure sizes the per-target slots for n targets, preserving buffers grown
// by earlier queries.
func (a *queryArena) ensure(n int) {
	if cap(a.bufs) < n {
		nb := make([][]Point, n)
		copy(nb, a.bufs[:cap(a.bufs)])
		a.bufs = nb
	}
	a.bufs = a.bufs[:n]
	if cap(a.counts) < n {
		a.counts = make([]int, n)
	}
	a.counts = a.counts[:n]
}

// rectTargets fills a.targets with the shards that can hold points inside r
// — MBR intersection refined by the occupancy bitmaps, which prune the many
// shards whose jagged Z-curve territory merely brushes r — and feeds the
// query to each target's drift advisor, recent-query window, and load
// counter.
func (a *queryArena) rectTargets(r Rect) {
	a.r = r
	for i, ss := range a.snap.shards {
		if !ss.mayContain(r) {
			continue
		}
		a.targets = append(a.targets, i)
		ctl := a.snap.ctls[i]
		ctl.load.Add(1)
		if adv := ctl.advisor.Load(); adv != nil {
			adv.Observe(r)
		}
		ctl.recent.add(r)
	}
}

// liveTargets fills a.targets with every shard serving at least one point —
// the kNN fan-out set, which cannot be pruned by rectangle.
func (a *queryArena) liveTargets() {
	for i, ss := range a.snap.shards {
		if !ss.empty && ss.live() > 0 {
			a.targets = append(a.targets, i)
		}
	}
}
