package wazi

// Fan-out pruning. A shard's key range is contiguous on the Z-curve but
// jagged in space, so its MBR vastly overstates where its points are — on
// skewed plans nearly every shard's MBR intersects nearly every query, and
// a fan-out pays a tree descent per false target. Each built shard index
// therefore carries a small occupancy bitmap: a 64×64 grid over the index's
// bounds marking the cells that hold at least one point. A query targets
// the shard only if it overlaps an occupied cell, which prunes the
// descents the MBR test cannot. The bitmap is built with the shard, grows
// monotonically under replayed inserts (deletes never clear bits — stale
// occupancy is conservative, never wrong), and saturates when a point
// lands outside its frame. The uncompacted insert buffer is covered
// separately by the shard snapshot's extraBounds MBR.

// occGridSide is the bitmap resolution; 64×64 = 4096 bits (64 words, 512
// bytes per shard) resolves regions finer than a hotspot — at 16×16 a big
// shard's sparse territory blurs into full cells and barely prunes.
const occGridSide = 64

// occupancy is the per-built-index cell bitmap. It is mutated only before
// its shard snapshot is published (build and log replay); afterwards it is
// read-only, like the index it describes.
type occupancy struct {
	frame Rect
	sat   bool // a point fell outside frame: every query may match
	bits  [64]uint64
}

// buildOccupancy maps pts onto the grid over frame. Callers pass the built
// index's bounds, which contain every point by construction.
func buildOccupancy(pts []Point, frame Rect) *occupancy {
	o := &occupancy{frame: frame}
	for _, p := range pts {
		o.add(p)
	}
	return o
}

// add marks p's cell, saturating if p lies outside the frame (a replayed
// insert can land anywhere).
func (o *occupancy) add(p Point) {
	if o.sat {
		return
	}
	if p.X < o.frame.MinX || p.X > o.frame.MaxX || p.Y < o.frame.MinY || p.Y > o.frame.MaxY {
		o.sat = true
		return
	}
	c := o.cellX(p.X)*occGridSide + o.cellY(p.Y)
	o.bits[c>>6] |= 1 << (c & 63)
}

// overlaps reports whether q intersects any occupied cell — whether the
// shard's index can possibly hold a point inside q.
func (o *occupancy) overlaps(q Rect) bool {
	if o.sat {
		return true
	}
	c := q.Intersect(o.frame)
	if !c.Valid() {
		return false
	}
	x0, x1 := o.cellX(c.MinX), o.cellX(c.MaxX)
	y0, y1 := o.cellY(c.MinY), o.cellY(c.MaxY)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			c := x*occGridSide + y
			if o.bits[c>>6]&(1<<(c&63)) != 0 {
				return true
			}
		}
	}
	return false
}

func (o *occupancy) cellX(v float64) int {
	return occCell(v, o.frame.MinX, o.frame.MaxX)
}

func (o *occupancy) cellY(v float64) int {
	return occCell(v, o.frame.MinY, o.frame.MaxY)
}

// occCell maps v in [lo, hi] to a grid cell, clamping the boundaries (the
// frame's max edge belongs to the last cell).
func occCell(v, lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	c := int(float64(occGridSide) * (v - lo) / (hi - lo))
	if c < 0 {
		return 0
	}
	if c >= occGridSide {
		return occGridSide - 1
	}
	return c
}
