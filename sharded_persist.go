package wazi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/shard"
	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/zorder"
)

// This file persists a Sharded index: the versioned partition plan plus one
// record per shard (its built index via core persistence, the uncompacted
// write buffer, tombstones, and the recent-query window that seeds the
// shard's drift advisor on reload). A server can therefore stop, write a
// snapshot, and restart serving the exact same contents without re-running
// partitioning or any index construction — the warm-start flow of
// cmd/waziserve.

const (
	// shardedMagic identifies a Sharded snapshot stream.
	shardedMagic = "wazi-sharded"
	// shardedSnapshotVersion is the on-disk format version; Load refuses
	// any other value so a format change can never be half-read. Version 2
	// added the plan epoch and the migration record (online repartitioning).
	shardedSnapshotVersion = 2
)

// shardedHeader is the versioned partition-plan header that precedes the
// migration record and the per-shard records.
type shardedHeader struct {
	Magic   string
	Version int
	Bounds  Rect
	Cuts    []uint64
	Shards  int
	// Epoch is the serving plan's epoch (completed repartitions across the
	// index's whole history); it namespaces the shard page files on disk.
	Epoch int
	// Repartitions is the instance's completed-migration count, restored so
	// monitoring counters survive restarts (equals Epoch today, but the
	// counter is per-history and the epoch is per-plan, so both persist).
	Repartitions int64
	// WALSeq is the write-ahead-log sequence number of the last write this
	// snapshot contains: Load replays only records above it. Captured under
	// the write mutex together with the snapshot pointer, so the two are
	// exactly consistent. Zero when the instance ran without a WAL (gob
	// also yields zero reading pre-WAL snapshots, which replays the whole
	// log — correct, since such a snapshot predates every record).
	WALSeq uint64
}

// migrationRecord describes a plan migration that was in flight when the
// snapshot was written. The snapshot body always holds the SERVING plan's
// complete, consistent state — mid-migration writes apply to the serving
// shards as well as to the migration log — so a warm start simply resumes
// serving the old plan and lets its control loop re-learn; the record
// preserves what the interrupted migration was aiming at for observability
// and for the decoder's validation surface.
type migrationRecord struct {
	InFlight     bool
	TargetBounds Rect
	TargetCuts   []uint64
	TargetShards int
}

// shardedShardRecord serializes one shard's complete state. The built index
// is embedded as opaque bytes (the core snapshot format, itself versioned)
// so the two formats can evolve independently. Under disk storage the index
// bytes are an attached snapshot — tree structure plus page references —
// and PageFile names the page file (relative to the storage directory)
// that the warm start adopts instead of rewriting.
type shardedShardRecord struct {
	Empty    bool
	HasIdx   bool
	Index    []byte
	Extra    []Point
	Dead     []deadRecord
	Bounds   Rect
	Recent   []Rect
	Rebuilds int
	Attached bool
	PageFile string
	Gen      int
	// Occupancy bitmap of the built index (version 2+): persisting it keeps
	// fan-out pruning effective on warm start without re-reading every page.
	// HasOcc false (or implausible contents) degrades to no pruning.
	HasOcc   bool
	OccFrame Rect
	OccSat   bool
	OccBits  [64]uint64
}

// maxSnapshotShards bounds the shard count a snapshot header may declare,
// keeping corrupt or adversarial input from driving huge allocations (each
// shard carries a drift ring and control state). Sixteen times the largest
// default shard count is far beyond any real deployment here.
const maxSnapshotShards = 1024

// deadRecord is one tombstone multiset entry.
type deadRecord struct {
	P Point
	N int
}

// Save serializes the Sharded index — partition plan, per-shard indexes,
// write buffers, tombstones, and recent-query windows — so Load can restore
// it without rebuilding. Save briefly blocks writers (it holds the write
// mutex only long enough to capture a consistent cut of the snapshot and
// control state) and never blocks readers; the serialization itself runs
// lock-free, since every captured structure is immutable copy-on-write.
func (s *Sharded) Save(w io.Writer) error {
	s.mu.Lock()
	snap := s.snap.Load()
	rebuilds := make([]int, len(snap.ctls))
	recents := make([][]Rect, len(snap.ctls))
	gens := make([]int, len(snap.ctls))
	for i, ctl := range snap.ctls {
		rebuilds[i] = ctl.rebuilds
		recents[i] = ctl.recent.snapshot()
		gens[i] = ctl.gen
	}
	mig := migrationRecord{InFlight: s.repartInFlight}
	if s.repartInFlight && s.repartTarget != nil {
		tc := s.repartTarget.Cuts()
		mig.TargetBounds = s.repartTarget.Bounds()
		mig.TargetCuts = make([]uint64, len(tc))
		for i, c := range tc {
			mig.TargetCuts[i] = uint64(c)
		}
		mig.TargetShards = s.repartTarget.NumShards()
	}
	repartitions := s.repartitions.Load()
	var walSeq uint64
	if s.wal != nil {
		// The log position matching this snapshot, captured in the same
		// mutex hold as the snapshot pointer. Recorded as the truncation
		// cut too — but TruncateWAL acts on it only once the caller has
		// durably persisted what Save writes (the Save-truncation
		// invariant, docs/DURABILITY.md).
		walSeq = s.wal.Stats().LastSeq
	}
	s.mu.Unlock()
	s.lastSaveCut.Store(walSeq)

	cuts := snap.plan.Cuts()
	h := shardedHeader{
		Magic:        shardedMagic,
		Version:      shardedSnapshotVersion,
		Bounds:       snap.plan.Bounds(),
		Cuts:         make([]uint64, len(cuts)),
		Shards:       len(snap.shards),
		Epoch:        snap.epoch,
		Repartitions: repartitions,
		WALSeq:       walSeq,
	}
	for i, c := range cuts {
		h.Cuts[i] = uint64(c)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("wazi: encoding sharded header: %w", err)
	}
	if err := enc.Encode(&mig); err != nil {
		return fmt.Errorf("wazi: encoding migration record: %w", err)
	}
	for i, ss := range snap.shards {
		rec := shardedShardRecord{
			Empty:    ss.empty,
			Extra:    ss.extra,
			Bounds:   ss.bounds,
			Recent:   recents[i],
			Rebuilds: rebuilds[i],
			Gen:      gens[i],
		}
		if ss.occ != nil {
			rec.HasOcc = true
			rec.OccFrame = ss.occ.frame
			rec.OccSat = ss.occ.sat
			rec.OccBits = ss.occ.bits
		}
		for p, n := range ss.dead {
			rec.Dead = append(rec.Dead, deadRecord{P: p, N: n})
		}
		if ss.idx != nil {
			var buf bytes.Buffer
			if ds, ok := ss.idx.z.Store().(*storage.DiskStore); ok {
				// Disk-backed shard: write an attached snapshot (tree +
				// page references) and adopt the page file on load, rather
				// than rewriting every page through the stream.
				if err := ss.idx.z.SaveAttached(&buf); err != nil {
					return fmt.Errorf("wazi: encoding shard %d index: %w", i, err)
				}
				rec.Attached = true
				rec.PageFile = filepath.Base(ds.Path())
			} else if err := ss.idx.Save(&buf); err != nil {
				return fmt.Errorf("wazi: encoding shard %d index: %w", i, err)
			}
			rec.HasIdx = true
			rec.Index = buf.Bytes()
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("wazi: encoding shard %d: %w", i, err)
		}
	}
	return nil
}

// LoadSharded restores a Sharded index previously written by Save: the
// partition plan is reconstructed from its header (so Locate routes exactly
// as before), every shard index is deserialized rather than rebuilt, and
// each shard's drift advisor is re-seeded from the persisted recent-query
// window. Options configure the restored instance the same way they
// configure NewSharded; WithShards is ignored (the plan fixes the shard
// count). A snapshot with a different format version is refused with a
// clear error rather than guessed at.
func LoadSharded(r io.Reader, opts ...ShardedOption) (*Sharded, error) {
	dec := gob.NewDecoder(r)
	var h shardedHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("wazi: decoding sharded header: %w", err)
	}
	if h.Magic != shardedMagic {
		return nil, fmt.Errorf("wazi: not a sharded snapshot (magic %q)", h.Magic)
	}
	if h.Version != shardedSnapshotVersion {
		return nil, fmt.Errorf("wazi: unsupported sharded snapshot version %d (this build reads version %d)",
			h.Version, shardedSnapshotVersion)
	}
	if h.Shards != len(h.Cuts)+1 || h.Shards < 1 {
		return nil, fmt.Errorf("wazi: corrupt sharded snapshot: %d shards with %d cuts", h.Shards, len(h.Cuts))
	}
	if h.Shards > maxSnapshotShards {
		return nil, fmt.Errorf("wazi: implausible shard count %d in snapshot", h.Shards)
	}
	if err := validateCuts(h.Cuts); err != nil {
		return nil, fmt.Errorf("wazi: corrupt sharded snapshot: %w", err)
	}
	if h.Epoch < 0 || h.Repartitions < 0 {
		return nil, fmt.Errorf("wazi: corrupt sharded snapshot: negative epoch %d / repartitions %d", h.Epoch, h.Repartitions)
	}
	var mig migrationRecord
	if err := dec.Decode(&mig); err != nil {
		return nil, fmt.Errorf("wazi: decoding migration record: %w", err)
	}
	if err := validateMigrationRecord(mig); err != nil {
		return nil, fmt.Errorf("wazi: corrupt sharded snapshot: %w", err)
	}

	cfg := shardedConfig{autoRebuild: true, autoRepartition: true}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.shards = h.Shards // the plan, not the caller, fixes the shard count
	cfg.fill()

	cuts := make([]zorder.Key, len(h.Cuts))
	for i, c := range h.Cuts {
		cuts[i] = zorder.Key(c)
	}
	if cfg.storageDir != "" {
		if err := os.MkdirAll(cfg.storageDir, 0o755); err != nil {
			return nil, fmt.Errorf("wazi: creating storage dir: %w", err)
		}
	}
	s := &Sharded{opts: cfg}
	if !cfg.noObs {
		s.obs = newShardedObs()
	}
	snap := &shardedSnapshot{plan: shard.Restore(h.Bounds, cuts),
		shards: make([]*shardSnap, h.Shards), ctls: make([]*shardCtl, h.Shards), epoch: h.Epoch}
	totalRebuilds := 0
	keepFiles := map[string]bool{}
	// closeLoaded unwinds already-adopted page stores when a later shard
	// fails to load, so an aborted warm start leaks no descriptors.
	closeLoaded := func() {
		for _, ss := range snap.shards {
			if ss != nil && ss.idx != nil {
				ss.idx.Close()
			}
		}
	}
	for i := 0; i < h.Shards; i++ {
		var rec shardedShardRecord
		if err := dec.Decode(&rec); err != nil {
			closeLoaded()
			return nil, fmt.Errorf("wazi: decoding shard %d: %w", i, err)
		}
		ctl := &shardCtl{recent: newQueryRing(cfg.windowSize), rebuilds: rec.Rebuilds, gen: rec.Gen}
		// Re-seed the recent-query window: without it the first post-restart
		// rebuild would be workload-oblivious, and the next Save would drop
		// the window the previous process persisted.
		ctl.recent.preload(rec.Recent)
		snap.ctls[i] = ctl
		totalRebuilds += rec.Rebuilds
		ss := &shardSnap{empty: rec.Empty, extra: rec.Extra, bounds: rec.Bounds}
		if len(rec.Extra) > 0 {
			ss.extraBounds = geom.RectFromPoints(rec.Extra)
		}
		if rec.HasIdx && rec.HasOcc && plausibleOccupancy(rec) {
			ss.occ = &occupancy{frame: rec.OccFrame, sat: rec.OccSat, bits: rec.OccBits}
		}
		if len(rec.Dead) > 0 {
			ss.dead = make(map[Point]int, len(rec.Dead))
			for _, d := range rec.Dead {
				ss.dead[d.P] = d.N
				ss.deadN += d.N
			}
		}
		if rec.HasIdx && cfg.storageDir != "" {
			if rec.Gen < 0 {
				closeLoaded()
				return nil, fmt.Errorf("wazi: corrupt sharded snapshot: shard %d has negative generation %d", i, rec.Gen)
			}
			// Reject page-file collisions before any file is opened or
			// created: two stores over one file would each manage their
			// own free list and silently overwrite each other's pages,
			// and a later migration target could even truncate a file an
			// earlier shard already adopted.
			name := rec.PageFile
			if !rec.Attached {
				name = shardPageFile(h.Epoch, i, rec.Gen)
			}
			if keepFiles[name] {
				closeLoaded()
				return nil, fmt.Errorf("wazi: corrupt sharded snapshot: page file %q referenced by two shards", name)
			}
		}
		if rec.HasIdx {
			idx, pageFile, err := loadShardIndex(rec, h.Epoch, i, cfg)
			if err != nil {
				closeLoaded()
				return nil, fmt.Errorf("wazi: loading shard %d index: %w", i, err)
			}
			if pageFile != "" {
				keepFiles[pageFile] = true
			}
			s.attachStoreObs(idx)
			ss.idx = idx
			ctl.advisor.Store(NewRebuildAdvisor(idx.Bounds(), rec.Recent, cfg.windowSize, cfg.driftThreshold))
		}
		snap.shards[i] = ss
	}
	if cfg.storageDir != "" {
		// Reclaim page files no shard references — retired generations the
		// previous process kept for its in-flight readers.
		sweepStalePageFiles(cfg.storageDir, keepFiles)
	}
	s.rebuilds.Store(int64(totalRebuilds))
	s.repartitions.Store(h.Repartitions)
	// The persisted windows approximate the workload the serving plan was
	// learned from; they re-seed the plan-drift reference as well as the
	// per-shard rings above.
	var allRecent []Rect
	for _, ctl := range snap.ctls {
		allRecent = append(allRecent, ctl.recent.snapshot()...)
	}
	s.planRef = queryHist(snap.plan.Bounds(), allRecent)
	s.snap.Store(snap)
	s.pool = shard.NewPool(cfg.workers)
	// Replay the WAL tail past the snapshot's cut before serving: the
	// snapshot holds everything up to WALSeq, the log everything
	// acknowledged after it.
	if err := s.initWAL(h.WALSeq); err != nil {
		s.pool.Close()
		closeLoaded()
		return nil, err
	}
	if cfg.autoRebuild {
		s.loop = make(chan struct{})
		s.kicked = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.rebuildLoop()
	}
	return s, nil
}

// loadShardIndex restores one shard's index from its record. Attached
// records (disk-backed shards) adopt their existing page file; inline
// records load in RAM, or — when the caller configured WithShardedStorage —
// migrate onto a fresh page file. It returns the page-file base name the
// shard now references, if any.
func loadShardIndex(rec shardedShardRecord, epoch, i int, cfg shardedConfig) (*Index, string, error) {
	switch {
	case rec.Attached:
		if cfg.storageDir == "" {
			return nil, "", fmt.Errorf("attached snapshot (page file %q) requires WithShardedStorage", rec.PageFile)
		}
		if rec.PageFile == "" || rec.PageFile != filepath.Base(rec.PageFile) || rec.PageFile == "." || rec.PageFile == ".." {
			return nil, "", fmt.Errorf("corrupt page-file name %q", rec.PageFile)
		}
		st, err := storage.OpenPageFile(filepath.Join(cfg.storageDir, rec.PageFile), storage.DiskOptions{CachePages: cfg.cachePages})
		if err != nil {
			return nil, "", err
		}
		z, err := core.LoadWithStore(bytes.NewReader(rec.Index), st)
		if err != nil {
			st.Close()
			return nil, "", err
		}
		return &Index{z: z}, rec.PageFile, nil
	case cfg.storageDir != "":
		// Inline snapshot restored onto disk storage: the cold migration
		// path between backends. Slot capacity follows the configured
		// WithLeafSize (or its default) so single-leaf pages stay
		// single-slot after migration.
		name := shardPageFile(epoch, i, rec.Gen)
		st, err := storage.CreatePageFile(filepath.Join(cfg.storageDir, name), storage.DiskOptions{
			SlotCap:    buildOptions(cfg.indexOpts).LeafSize,
			CachePages: cfg.cachePages,
		})
		if err != nil {
			return nil, "", err
		}
		z, err := core.LoadWithStore(bytes.NewReader(rec.Index), st)
		if err != nil {
			st.Close()
			os.Remove(filepath.Join(cfg.storageDir, name))
			return nil, "", err
		}
		return &Index{z: z}, name, nil
	default:
		idx, err := Load(bytes.NewReader(rec.Index))
		if err != nil {
			return nil, "", err
		}
		return idx, "", nil
	}
}

// plausibleOccupancy decides whether a restored occupancy bitmap can be
// trusted for pruning. The bitmap is routing-critical — a zeroed bit makes
// mayContain silently drop results — so anything a legitimate Save cannot
// produce degrades to nil (no pruning, always correct) instead: the frame
// must be a valid rectangle inside the shard's bounds (it was the built
// index's MBR, and bounds only ever grow from there), and an unsaturated
// bitmap must mark at least one cell (it was built from a non-empty index).
func plausibleOccupancy(rec shardedShardRecord) bool {
	f := rec.OccFrame
	if !f.Valid() || f.MinX < rec.Bounds.MinX || f.MinY < rec.Bounds.MinY ||
		f.MaxX > rec.Bounds.MaxX || f.MaxY > rec.Bounds.MaxY {
		return false
	}
	if rec.OccSat {
		return true
	}
	for _, w := range rec.OccBits {
		if w != 0 {
			return true
		}
	}
	return false
}

// validateCuts enforces the plan invariant the routing code assumes: cut
// keys strictly increasing (sort.Search over an unsorted cut list would
// route points to the wrong shard without ever failing loudly).
func validateCuts(cuts []uint64) error {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return fmt.Errorf("cut keys not strictly increasing at %d (%d then %d)", i, cuts[i-1], cuts[i])
		}
	}
	return nil
}

// validateMigrationRecord rejects inconsistent migration targets. An idle
// record must be empty. An in-flight record may be empty too — a Save can
// land in the migration's learn phase, after the in-flight flag is raised
// but before a target plan exists — but a non-empty target must be
// structurally valid (the serving plan's invariants, applied to the
// target).
func validateMigrationRecord(m migrationRecord) error {
	if m.TargetShards == 0 && len(m.TargetCuts) == 0 {
		return nil // no target recorded: idle, or in flight mid-learn
	}
	if !m.InFlight {
		return fmt.Errorf("migration record idle but carries a target plan (%d shards, %d cuts)",
			m.TargetShards, len(m.TargetCuts))
	}
	if m.TargetShards != len(m.TargetCuts)+1 || m.TargetShards < 1 {
		return fmt.Errorf("in-flight migration target has %d shards with %d cuts", m.TargetShards, len(m.TargetCuts))
	}
	if m.TargetShards > maxSnapshotShards {
		return fmt.Errorf("implausible migration target shard count %d", m.TargetShards)
	}
	if err := validateCuts(m.TargetCuts); err != nil {
		return fmt.Errorf("migration target: %w", err)
	}
	return nil
}
