package wazi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/shard"
	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/zorder"
)

// This file persists a Sharded index: the versioned partition plan plus one
// record per shard (its built index via core persistence, the uncompacted
// write buffer, tombstones, and the recent-query window that seeds the
// shard's drift advisor on reload). A server can therefore stop, write a
// snapshot, and restart serving the exact same contents without re-running
// partitioning or any index construction — the warm-start flow of
// cmd/waziserve.

const (
	// shardedMagic identifies a Sharded snapshot stream.
	shardedMagic = "wazi-sharded"
	// shardedSnapshotVersion is the on-disk format version; Load refuses
	// any other value so a format change can never be half-read.
	shardedSnapshotVersion = 1
)

// shardedHeader is the versioned partition-plan header that precedes the
// per-shard records.
type shardedHeader struct {
	Magic   string
	Version int
	Bounds  Rect
	Cuts    []uint64
	Shards  int
}

// shardedShardRecord serializes one shard's complete state. The built index
// is embedded as opaque bytes (the core snapshot format, itself versioned)
// so the two formats can evolve independently. Under disk storage the index
// bytes are an attached snapshot — tree structure plus page references —
// and PageFile names the page file (relative to the storage directory)
// that the warm start adopts instead of rewriting.
type shardedShardRecord struct {
	Empty    bool
	HasIdx   bool
	Index    []byte
	Extra    []Point
	Dead     []deadRecord
	Bounds   Rect
	Recent   []Rect
	Rebuilds int
	Attached bool
	PageFile string
	Gen      int
}

// maxSnapshotShards bounds the shard count a snapshot header may declare,
// keeping corrupt or adversarial input from driving huge allocations (each
// shard carries a drift ring and control state). Sixteen times the largest
// default shard count is far beyond any real deployment here.
const maxSnapshotShards = 1024

// deadRecord is one tombstone multiset entry.
type deadRecord struct {
	P Point
	N int
}

// Save serializes the Sharded index — partition plan, per-shard indexes,
// write buffers, tombstones, and recent-query windows — so Load can restore
// it without rebuilding. Save briefly blocks writers (it holds the write
// mutex only long enough to capture a consistent cut of the snapshot and
// control state) and never blocks readers; the serialization itself runs
// lock-free, since every captured structure is immutable copy-on-write.
func (s *Sharded) Save(w io.Writer) error {
	s.mu.Lock()
	snap := s.snap.Load()
	rebuilds := make([]int, len(s.ctls))
	recents := make([][]Rect, len(s.ctls))
	gens := make([]int, len(s.ctls))
	for i, ctl := range s.ctls {
		rebuilds[i] = ctl.rebuilds
		recents[i] = ctl.recent.snapshot()
		gens[i] = ctl.gen
	}
	s.mu.Unlock()

	cuts := s.plan.Cuts()
	h := shardedHeader{
		Magic:   shardedMagic,
		Version: shardedSnapshotVersion,
		Bounds:  s.plan.Bounds(),
		Cuts:    make([]uint64, len(cuts)),
		Shards:  len(snap.shards),
	}
	for i, c := range cuts {
		h.Cuts[i] = uint64(c)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("wazi: encoding sharded header: %w", err)
	}
	for i, ss := range snap.shards {
		rec := shardedShardRecord{
			Empty:    ss.empty,
			Extra:    ss.extra,
			Bounds:   ss.bounds,
			Recent:   recents[i],
			Rebuilds: rebuilds[i],
			Gen:      gens[i],
		}
		for p, n := range ss.dead {
			rec.Dead = append(rec.Dead, deadRecord{P: p, N: n})
		}
		if ss.idx != nil {
			var buf bytes.Buffer
			if ds, ok := ss.idx.z.Store().(*storage.DiskStore); ok {
				// Disk-backed shard: write an attached snapshot (tree +
				// page references) and adopt the page file on load, rather
				// than rewriting every page through the stream.
				if err := ss.idx.z.SaveAttached(&buf); err != nil {
					return fmt.Errorf("wazi: encoding shard %d index: %w", i, err)
				}
				rec.Attached = true
				rec.PageFile = filepath.Base(ds.Path())
			} else if err := ss.idx.Save(&buf); err != nil {
				return fmt.Errorf("wazi: encoding shard %d index: %w", i, err)
			}
			rec.HasIdx = true
			rec.Index = buf.Bytes()
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("wazi: encoding shard %d: %w", i, err)
		}
	}
	return nil
}

// LoadSharded restores a Sharded index previously written by Save: the
// partition plan is reconstructed from its header (so Locate routes exactly
// as before), every shard index is deserialized rather than rebuilt, and
// each shard's drift advisor is re-seeded from the persisted recent-query
// window. Options configure the restored instance the same way they
// configure NewSharded; WithShards is ignored (the plan fixes the shard
// count). A snapshot with a different format version is refused with a
// clear error rather than guessed at.
func LoadSharded(r io.Reader, opts ...ShardedOption) (*Sharded, error) {
	dec := gob.NewDecoder(r)
	var h shardedHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("wazi: decoding sharded header: %w", err)
	}
	if h.Magic != shardedMagic {
		return nil, fmt.Errorf("wazi: not a sharded snapshot (magic %q)", h.Magic)
	}
	if h.Version != shardedSnapshotVersion {
		return nil, fmt.Errorf("wazi: unsupported sharded snapshot version %d (this build reads version %d)",
			h.Version, shardedSnapshotVersion)
	}
	if h.Shards != len(h.Cuts)+1 || h.Shards < 1 {
		return nil, fmt.Errorf("wazi: corrupt sharded snapshot: %d shards with %d cuts", h.Shards, len(h.Cuts))
	}
	if h.Shards > maxSnapshotShards {
		return nil, fmt.Errorf("wazi: implausible shard count %d in snapshot", h.Shards)
	}

	cfg := shardedConfig{autoRebuild: true}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.shards = h.Shards // the plan, not the caller, fixes the shard count
	cfg.fill()

	cuts := make([]zorder.Key, len(h.Cuts))
	for i, c := range h.Cuts {
		cuts[i] = zorder.Key(c)
	}
	if cfg.storageDir != "" {
		if err := os.MkdirAll(cfg.storageDir, 0o755); err != nil {
			return nil, fmt.Errorf("wazi: creating storage dir: %w", err)
		}
	}
	s := &Sharded{plan: shard.Restore(h.Bounds, cuts), opts: cfg}
	snap := &shardedSnapshot{shards: make([]*shardSnap, h.Shards)}
	s.ctls = make([]*shardCtl, h.Shards)
	totalRebuilds := 0
	keepFiles := map[string]bool{}
	// closeLoaded unwinds already-adopted page stores when a later shard
	// fails to load, so an aborted warm start leaks no descriptors.
	closeLoaded := func() {
		for _, ss := range snap.shards {
			if ss != nil && ss.idx != nil {
				ss.idx.Close()
			}
		}
	}
	for i := 0; i < h.Shards; i++ {
		var rec shardedShardRecord
		if err := dec.Decode(&rec); err != nil {
			closeLoaded()
			return nil, fmt.Errorf("wazi: decoding shard %d: %w", i, err)
		}
		ctl := &shardCtl{recent: newQueryRing(cfg.windowSize), rebuilds: rec.Rebuilds, gen: rec.Gen}
		// Re-seed the recent-query window: without it the first post-restart
		// rebuild would be workload-oblivious, and the next Save would drop
		// the window the previous process persisted.
		ctl.recent.preload(rec.Recent)
		s.ctls[i] = ctl
		totalRebuilds += rec.Rebuilds
		ss := &shardSnap{empty: rec.Empty, extra: rec.Extra, bounds: rec.Bounds}
		if len(rec.Dead) > 0 {
			ss.dead = make(map[Point]int, len(rec.Dead))
			for _, d := range rec.Dead {
				ss.dead[d.P] = d.N
				ss.deadN += d.N
			}
		}
		if rec.HasIdx && cfg.storageDir != "" {
			if rec.Gen < 0 {
				closeLoaded()
				return nil, fmt.Errorf("wazi: corrupt sharded snapshot: shard %d has negative generation %d", i, rec.Gen)
			}
			// Reject page-file collisions before any file is opened or
			// created: two stores over one file would each manage their
			// own free list and silently overwrite each other's pages,
			// and a later migration target could even truncate a file an
			// earlier shard already adopted.
			name := rec.PageFile
			if !rec.Attached {
				name = shardPageFile(i, rec.Gen)
			}
			if keepFiles[name] {
				closeLoaded()
				return nil, fmt.Errorf("wazi: corrupt sharded snapshot: page file %q referenced by two shards", name)
			}
		}
		if rec.HasIdx {
			idx, pageFile, err := loadShardIndex(rec, i, cfg)
			if err != nil {
				closeLoaded()
				return nil, fmt.Errorf("wazi: loading shard %d index: %w", i, err)
			}
			if pageFile != "" {
				keepFiles[pageFile] = true
			}
			ss.idx = idx
			ctl.advisor.Store(NewRebuildAdvisor(idx.Bounds(), rec.Recent, cfg.windowSize, cfg.driftThreshold))
		}
		snap.shards[i] = ss
	}
	if cfg.storageDir != "" {
		// Reclaim page files no shard references — retired generations the
		// previous process kept for its in-flight readers.
		sweepStalePageFiles(cfg.storageDir, keepFiles)
	}
	s.rebuilds.Store(int64(totalRebuilds))
	s.snap.Store(snap)
	s.pool = shard.NewPool(cfg.workers)
	if cfg.autoRebuild {
		s.loop = make(chan struct{})
		s.kicked = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.rebuildLoop()
	}
	return s, nil
}

// loadShardIndex restores one shard's index from its record. Attached
// records (disk-backed shards) adopt their existing page file; inline
// records load in RAM, or — when the caller configured WithShardedStorage —
// migrate onto a fresh page file. It returns the page-file base name the
// shard now references, if any.
func loadShardIndex(rec shardedShardRecord, i int, cfg shardedConfig) (*Index, string, error) {
	switch {
	case rec.Attached:
		if cfg.storageDir == "" {
			return nil, "", fmt.Errorf("attached snapshot (page file %q) requires WithShardedStorage", rec.PageFile)
		}
		if rec.PageFile == "" || rec.PageFile != filepath.Base(rec.PageFile) || rec.PageFile == "." || rec.PageFile == ".." {
			return nil, "", fmt.Errorf("corrupt page-file name %q", rec.PageFile)
		}
		st, err := storage.OpenPageFile(filepath.Join(cfg.storageDir, rec.PageFile), storage.DiskOptions{CachePages: cfg.cachePages})
		if err != nil {
			return nil, "", err
		}
		z, err := core.LoadWithStore(bytes.NewReader(rec.Index), st)
		if err != nil {
			st.Close()
			return nil, "", err
		}
		return &Index{z: z}, rec.PageFile, nil
	case cfg.storageDir != "":
		// Inline snapshot restored onto disk storage: the cold migration
		// path between backends. Slot capacity follows the configured
		// WithLeafSize (or its default) so single-leaf pages stay
		// single-slot after migration.
		name := shardPageFile(i, rec.Gen)
		st, err := storage.CreatePageFile(filepath.Join(cfg.storageDir, name), storage.DiskOptions{
			SlotCap:    buildOptions(cfg.indexOpts).LeafSize,
			CachePages: cfg.cachePages,
		})
		if err != nil {
			return nil, "", err
		}
		z, err := core.LoadWithStore(bytes.NewReader(rec.Index), st)
		if err != nil {
			st.Close()
			os.Remove(filepath.Join(cfg.storageDir, name))
			return nil, "", err
		}
		return &Index{z: z}, name, nil
	default:
		idx, err := Load(bytes.NewReader(rec.Index))
		if err != nil {
			return nil, "", err
		}
		return idx, "", nil
	}
}
