package wazi

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/obs"
)

func obsTestPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestShardedObsInstruments(t *testing.T) {
	pts := obsTestPoints(6000, 1)
	s, err := NewSharded(pts, nil, WithShards(4), WithoutAutoRebuild(),
		WithShardedStorage(t.TempDir(), 2), WithIndexOptions(WithLeafSize(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	o := s.Obs()
	if o == nil {
		t.Fatal("Obs() = nil with observability on")
	}
	wide := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	got := s.RangeQuery(wide)
	if len(got) != len(pts) {
		t.Fatalf("wide range returned %d, want %d", len(got), len(pts))
	}
	if o.FanoutWidth.Count() == 0 {
		t.Fatal("FanoutWidth not observed")
	}
	if o.ShardScan.Count() == 0 {
		t.Fatal("ShardScan not observed")
	}
	// A 2-page cache against a 4-shard scan of ~24 pages each must fault.
	if o.PageRead.Count() == 0 {
		t.Fatal("PageRead not observed despite a tiny cache")
	}
	// A narrow query prunes shards.
	s.RangeQuery(Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.02, MaxY: 0.02})
	if o.FanoutPruned.Value() == 0 {
		t.Fatal("FanoutPruned never advanced on a narrow query")
	}
}

func TestViewWithTraceSpans(t *testing.T) {
	pts := obsTestPoints(6000, 2)
	s, err := NewSharded(pts, nil, WithShards(4), WithoutAutoRebuild(),
		WithShardedStorage(t.TempDir(), 2), WithIndexOptions(WithLeafSize(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := obs.NewTrace("range")
	v := s.View().WithTrace(tr)
	got := v.RangeQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if len(got) != len(pts) {
		t.Fatalf("traced range returned %d, want %d", len(got), len(pts))
	}
	tr.Finish()
	snap := tr.Snapshot()
	var scans, pagestores int
	var results int64
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "shard_scan":
			scans++
			results += sp.Attrs["results"]
		case "pagestore":
			pagestores++
			if sp.Attrs["reads"] == 0 {
				t.Fatal("pagestore span with zero reads")
			}
		}
	}
	if scans != 4 {
		t.Fatalf("shard_scan spans = %d, want 4 (one per shard)", scans)
	}
	if results != int64(len(pts)) {
		t.Fatalf("span result attrs sum to %d, want %d", results, len(pts))
	}
	if pagestores != 1 {
		t.Fatalf("pagestore spans = %d, want 1", pagestores)
	}

	// The un-traced base view records no spans.
	before := len(tr.Snapshot().Spans)
	s.View().RangeQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if after := len(tr.Snapshot().Spans); after != before {
		t.Fatalf("un-traced view added spans: %d -> %d", before, after)
	}
	if s.View().WithTrace(nil) == nil {
		t.Fatal("WithTrace(nil) should return a usable view")
	}
}

func TestWithoutObservability(t *testing.T) {
	pts := obsTestPoints(2000, 3)
	s, err := NewSharded(pts, nil, WithShards(4), WithoutAutoRebuild(), WithoutObservability())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Obs() != nil {
		t.Fatal("Obs() should be nil under WithoutObservability")
	}
	if got := s.RangeQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); len(got) != len(pts) {
		t.Fatalf("range returned %d, want %d", len(got), len(pts))
	}
	// Tracing still works without the instruments.
	tr := obs.NewTrace("range")
	s.View().WithTrace(tr).RangeQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if len(tr.Snapshot().Spans) == 0 {
		t.Fatal("traced view recorded no spans without observability")
	}
}
