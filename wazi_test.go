package wazi_test

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

func testData(n int, seed int64) []wazi.Point {
	return dataset.Generate(dataset.NewYork, n, seed)
}

func testWorkload(n int, seed int64) []wazi.Rect {
	return workload.Skewed(dataset.NewYork, n, 0.0256e-2, seed)
}

func bruteRange(pts []wazi.Point, r wazi.Rect) []wazi.Point {
	var out []wazi.Point
	for _, p := range pts {
		if r.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

func sortPts(pts []wazi.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

func assertSame(t *testing.T, got, want []wazi.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d, want %d", ctx, len(got), len(want))
	}
	g := append([]wazi.Point(nil), got...)
	w := append([]wazi.Point(nil), want...)
	sortPts(g)
	sortPts(w)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: differ at %d: %v vs %v", ctx, i, g[i], w[i])
		}
	}
}

func TestEndToEndWaZI(t *testing.T) {
	pts := testData(8000, 1)
	qs := testWorkload(300, 2)
	idx, err := wazi.NewWorkloadAware(pts, qs, wazi.WithSeed(3), wazi.WithLeafSize(128))
	if err != nil {
		t.Fatal(err)
	}
	if !idx.WorkloadAware() {
		t.Error("WorkloadAware should be true")
	}
	if idx.Len() != len(pts) {
		t.Fatalf("Len = %d", idx.Len())
	}
	for _, r := range qs[:50] {
		assertSame(t, idx.RangeQuery(r), bruteRange(pts, r), "workload query")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		r := wazi.NewRect(
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
		)
		assertSame(t, idx.RangeQuery(r), bruteRange(pts, r), "random query")
		if got, want := idx.RangeCount(r), len(bruteRange(pts, r)); got != want {
			t.Fatalf("RangeCount = %d, want %d", got, want)
		}
	}
	if !idx.PointQuery(pts[17]) {
		t.Error("indexed point not found")
	}
	if idx.Bytes() <= 0 || idx.Describe() == "" {
		t.Error("accounting accessors broken")
	}
}

func TestEndToEndBase(t *testing.T) {
	pts := testData(4000, 5)
	idx, err := wazi.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	if idx.WorkloadAware() {
		t.Error("base index should not report workload awareness")
	}
	full := idx.RangeQuery(idx.Bounds())
	if len(full) != len(pts) {
		t.Fatalf("full query returned %d", len(full))
	}
}

func TestOptionsApply(t *testing.T) {
	pts := testData(3000, 6)
	qs := testWorkload(100, 7)
	_, err := wazi.NewWorkloadAware(pts, qs,
		wazi.WithLeafSize(64),
		wazi.WithCandidates(8),
		wazi.WithAlpha(0.01),
		wazi.WithoutSkipping(),
		wazi.WithSeed(8),
		wazi.WithExactCounts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wazi.New(nil); err != wazi.ErrNoPoints {
		t.Errorf("empty build err = %v, want ErrNoPoints", err)
	}
}

func TestUpdatesAndKNN(t *testing.T) {
	pts := testData(2000, 9)
	idx, err := wazi.NewWorkloadAware(pts, testWorkload(100, 10), wazi.WithLeafSize(64))
	if err != nil {
		t.Fatal(err)
	}
	p := wazi.Point{X: 0.123, Y: 0.456}
	idx.Insert(p)
	if !idx.PointQuery(p) {
		t.Error("inserted point not found")
	}
	if !idx.Delete(p) {
		t.Error("delete failed")
	}
	if idx.PointQuery(p) {
		t.Error("deleted point still found")
	}
	nn := idx.KNN(wazi.Point{X: 0.5, Y: 0.5}, 5)
	if len(nn) != 5 {
		t.Fatalf("KNN returned %d", len(nn))
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	pts := testData(5000, 11)
	qs := testWorkload(200, 12)
	idx, err := wazi.NewWorkloadAware(pts, qs, wazi.WithSeed(13), wazi.WithLeafSize(128))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := wazi.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), idx.Len())
	}
	if !loaded.WorkloadAware() {
		t.Error("workload-awareness lost in roundtrip")
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 60; i++ {
		r := wazi.NewRect(
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
		)
		assertSame(t, loaded.RangeQuery(r), idx.RangeQuery(r), "loaded vs original")
	}
	// Loaded index remains updatable.
	loaded.Insert(wazi.Point{X: 0.5, Y: 0.5})
	if !loaded.PointQuery(wazi.Point{X: 0.5, Y: 0.5}) {
		t.Error("loaded index not updatable")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := wazi.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("Load must reject garbage input")
	}
	if _, err := wazi.Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load must reject empty input")
	}
	// Truncated snapshot.
	pts := testData(1000, 15)
	idx, _ := wazi.New(pts)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := wazi.Load(bytes.NewReader(trunc)); err == nil {
		t.Error("Load must reject a truncated snapshot")
	}
}

func TestConcurrentAccess(t *testing.T) {
	pts := testData(3000, 16)
	idx, err := wazi.NewWorkloadAware(pts, testWorkload(100, 17), wazi.WithLeafSize(64))
	if err != nil {
		t.Fatal(err)
	}
	c := wazi.NewConcurrent(idx)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0:
					c.Insert(wazi.Point{X: rng.Float64(), Y: rng.Float64()})
				case 1:
					c.PointQuery(wazi.Point{X: rng.Float64(), Y: rng.Float64()})
				case 2:
					r := wazi.NewRect(
						wazi.Point{X: rng.Float64(), Y: rng.Float64()},
						wazi.Point{X: rng.Float64(), Y: rng.Float64()},
					)
					c.RangeQuery(r)
				default:
					c.KNN(wazi.Point{X: rng.Float64(), Y: rng.Float64()}, 3)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if c.Len() < 3000 {
		t.Errorf("Len after concurrent inserts = %d", c.Len())
	}
	if c.Snapshot().RangeQueries == 0 {
		t.Error("stats not recorded under concurrency")
	}
}

func TestRebuildAdvisor(t *testing.T) {
	bounds := wazi.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	build := testWorkload(2000, 18)
	a := wazi.NewRebuildAdvisor(bounds, build, 512, 0.5)

	// Same-distribution traffic: low drift, no rebuild.
	same := testWorkload(2000, 19)
	for _, q := range same {
		a.Observe(q)
	}
	if d := a.Drift(); d > 0.3 {
		t.Errorf("same-distribution drift = %v, expected low", d)
	}
	if a.RebuildRecommended() {
		t.Error("rebuild recommended without drift")
	}

	// Shift to a differently skewed workload (another region): drift rises
	// past the threshold.
	other := workload.Skewed(dataset.CaliNev, 2000, 0.0256e-2, 20)
	for _, q := range other {
		a.Observe(q)
	}
	if d := a.Drift(); d < 0.5 {
		t.Errorf("post-shift drift = %v, expected above threshold", d)
	}
	if !a.RebuildRecommended() {
		t.Error("rebuild should be recommended after a full workload shift")
	}
	if a.Observed() != 4000 {
		t.Errorf("Observed = %d", a.Observed())
	}
}

func TestRebuildAdvisorWarmup(t *testing.T) {
	bounds := wazi.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	a := wazi.NewRebuildAdvisor(bounds, testWorkload(100, 21), 0, 0)
	// Below a quarter of the window, drift must report 0 (not enough
	// evidence).
	q := workload.Uniform(10, 0.0064e-2, 22)
	for _, r := range q {
		a.Observe(r)
	}
	if a.Drift() != 0 {
		t.Errorf("drift during warmup = %v, want 0", a.Drift())
	}
}

func TestWorkloadCostExposed(t *testing.T) {
	pts := testData(4000, 23)
	qs := testWorkload(200, 24)
	base, _ := wazi.New(pts, wazi.WithoutSkipping())
	aware, _ := wazi.NewWorkloadAware(pts, qs, wazi.WithSeed(25), wazi.WithoutSkipping(), wazi.WithExactCounts())
	cb := base.WorkloadCost(qs, 0.1)
	cw := aware.WorkloadCost(qs, 0.1)
	if cw > cb {
		t.Errorf("workload-aware cost %v exceeds base %v", cw, cb)
	}
}
