module github.com/wazi-index/wazi

go 1.24
