package wazi_test

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/workload"
)

func newTestSharded(t *testing.T, pts []wazi.Point, qs []wazi.Rect, opts ...wazi.ShardedOption) *wazi.Sharded {
	t.Helper()
	s, err := wazi.NewSharded(pts, qs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestShardedMatchesSingleIndex is the core acceptance check: over the same
// data, Sharded must return exactly the result sets of a single Index and
// of the brute-force ground truth, for range, count, point, and kNN
// queries.
func TestShardedMatchesSingleIndex(t *testing.T) {
	pts := testData(12000, 41)
	qs := testWorkload(400, 42)
	s := newTestSharded(t, pts, qs, wazi.WithShards(7), wazi.WithoutAutoRebuild())
	single, err := wazi.NewWorkloadAware(pts, qs, wazi.WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	ref := index.NewBrute(pts)

	if s.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(pts))
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 120; i++ {
		var r wazi.Rect
		if i < len(qs) && i%2 == 0 {
			r = qs[i]
		} else {
			r = wazi.NewRect(
				wazi.Point{X: rng.Float64(), Y: rng.Float64()},
				wazi.Point{X: rng.Float64(), Y: rng.Float64()},
			)
		}
		want := ref.RangeQuery(r)
		assertSame(t, s.RangeQuery(r), want, "sharded vs brute")
		assertSame(t, single.RangeQuery(r), want, "single vs brute")
		if got := s.RangeCount(r); got != len(want) {
			t.Fatalf("RangeCount = %d, want %d", got, len(want))
		}
	}
	for i := 0; i < len(pts); i += 97 {
		if !s.PointQuery(pts[i]) {
			t.Fatalf("indexed point %v not found", pts[i])
		}
	}
	for i := 0; i < 200; i++ {
		p := wazi.Point{X: rng.Float64(), Y: rng.Float64()}
		if s.PointQuery(p) != ref.PointQuery(p) {
			t.Fatalf("PointQuery(%v) disagrees with brute", p)
		}
	}
	for _, k := range []int{1, 5, 40} {
		q := wazi.Point{X: rng.Float64(), Y: rng.Float64()}
		assertKNN(t, s.KNN(q, k), pts, q, k)
	}
	if s.Bytes() <= 0 || s.Describe() == "" || s.NumShards() < 1 {
		t.Error("accounting accessors broken")
	}
	if s.Stats().RangeQueries == 0 {
		t.Error("logical range queries not counted")
	}
}

// assertKNN verifies a kNN result against a brute-force scan by comparing
// the multiset of distances (coordinate ties make the exact point set
// ambiguous).
func assertKNN(t *testing.T, got []wazi.Point, pts []wazi.Point, q wazi.Point, k int) {
	t.Helper()
	want := k
	if len(pts) < k {
		want = len(pts)
	}
	if len(got) != want {
		t.Fatalf("KNN returned %d points, want %d", len(got), want)
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dx, dy := p.X-q.X, p.Y-q.Y
		dists[i] = dx*dx + dy*dy
	}
	for i := 0; i < len(dists); i++ { // selection of the k smallest
		for j := i + 1; j < len(dists); j++ {
			if dists[j] < dists[i] {
				dists[i], dists[j] = dists[j], dists[i]
			}
		}
		if i >= k {
			break
		}
	}
	prev := -1.0
	for i, p := range got {
		dx, dy := p.X-q.X, p.Y-q.Y
		d := dx*dx + dy*dy
		if d < prev {
			t.Fatalf("KNN result not ordered at %d", i)
		}
		prev = d
		if math.Abs(d-dists[i]) > 1e-12 {
			t.Fatalf("KNN distance %d = %v, brute = %v", i, d, dists[i])
		}
	}
}

// TestShardedUpdates cross-checks inserts and deletes (including duplicate
// points and misses) against the brute-force reference.
func TestShardedUpdates(t *testing.T) {
	pts := testData(5000, 51)
	qs := testWorkload(200, 52)
	// Small compaction threshold so the test exercises the synchronous
	// compaction path too.
	s := newTestSharded(t, pts, qs, wazi.WithShards(5), wazi.WithoutAutoRebuild(),
		wazi.WithCompactThreshold(256))
	live := append([]wazi.Point(nil), pts...)
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 2000; i++ {
		switch {
		case rng.Intn(3) > 0:
			p := wazi.Point{X: rng.Float64(), Y: rng.Float64()}
			if rng.Intn(4) == 0 {
				p = live[rng.Intn(len(live))] // duplicate
			}
			s.Insert(p)
			live = append(live, p)
		default:
			var p wazi.Point
			hit := rng.Intn(2) == 0
			if hit {
				p = live[rng.Intn(len(live))]
			} else {
				p = wazi.Point{X: rng.Float64() + 2, Y: rng.Float64()}
			}
			got := s.Delete(p)
			want := false
			for j, q := range live {
				if q == p {
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("Delete(%v) = %v, want %v", p, got, want)
			}
		}
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
	ref := index.NewBrute(live)
	for i := 0; i < 80; i++ {
		r := wazi.NewRect(
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
		)
		assertSame(t, s.RangeQuery(r), ref.RangeQuery(r), "after updates")
	}
	full := s.RangeQuery(wazi.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10})
	assertSame(t, full, live, "full scan after updates")
}

// TestShardedCompaction verifies that crossing the write-buffer threshold
// folds the deltas into the shard indexes without changing results.
func TestShardedCompaction(t *testing.T) {
	pts := testData(3000, 61)
	s := newTestSharded(t, pts, testWorkload(100, 62), wazi.WithShards(3),
		wazi.WithoutAutoRebuild(), wazi.WithCompactThreshold(128))
	rng := rand.New(rand.NewSource(63))
	extra := make([]wazi.Point, 1000)
	for i := range extra {
		extra[i] = wazi.Point{X: rng.Float64(), Y: rng.Float64()}
		s.Insert(extra[i])
	}
	if s.Rebuilds() == 0 {
		t.Fatal("expected compactions after exceeding the write-buffer threshold")
	}
	totalBacklog := 0
	for _, info := range s.Shards() {
		totalBacklog += info.Backlog
	}
	if totalBacklog >= 1000 {
		t.Fatalf("backlog %d suggests nothing was compacted", totalBacklog)
	}
	ref := index.NewBrute(append(append([]wazi.Point(nil), pts...), extra...))
	for i := 0; i < 50; i++ {
		r := wazi.NewRect(
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
			wazi.Point{X: rng.Float64(), Y: rng.Float64()},
		)
		assertSame(t, s.RangeQuery(r), ref.RangeQuery(r), "after compaction")
	}
	// Scan counters must survive index retirement: another round of
	// compactions may not move aggregate stats backwards.
	before := s.Stats()
	for i := 0; i < 300; i++ {
		s.Insert(wazi.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	after := s.Stats()
	if after.PointsScanned < before.PointsScanned || after.PagesScanned < before.PagesScanned {
		t.Fatalf("scan counters went backwards across compaction: %+v -> %+v", before, after)
	}
}

// TestShardedDriftRebuild drives a drifted workload through the index and
// verifies the control loop rebuilds the affected shards workload-aware,
// with unchanged results.
func TestShardedDriftRebuild(t *testing.T) {
	pts := testData(8000, 71)
	buildQs := testWorkload(1000, 72)
	s := newTestSharded(t, pts, buildQs, wazi.WithShards(4), wazi.WithoutAutoRebuild(),
		wazi.WithDriftWindow(256), wazi.WithDriftThreshold(0.5))

	// Serving the build-time distribution: no rebuilds.
	for _, q := range testWorkload(600, 73) {
		s.RangeQuery(q)
	}
	if n := s.CheckRebuilds(); n != 0 {
		t.Fatalf("rebuilt %d shards without drift", n)
	}

	// Shift traffic to a differently skewed region's workload.
	drifted := workload.Skewed(dataset.CaliNev, 1500, 0.0256e-2, 74)
	for _, q := range drifted {
		s.RangeQuery(q)
	}
	n := s.CheckRebuilds()
	if n == 0 {
		t.Fatal("expected drift-triggered rebuilds after a full workload shift")
	}
	if s.Rebuilds() != int64(n) {
		t.Fatalf("Rebuilds() = %d, want %d", s.Rebuilds(), n)
	}
	rebuilt := 0
	for _, info := range s.Shards() {
		if info.Rebuilds > 0 {
			rebuilt++
			if !info.WorkloadAware {
				t.Error("drift rebuild should produce a workload-aware shard index")
			}
		}
	}
	if rebuilt != n {
		t.Fatalf("per-shard rebuild counts sum to %d, want %d", rebuilt, n)
	}

	// Results must be unchanged by the hot swap.
	ref := index.NewBrute(pts)
	for _, r := range drifted[:60] {
		assertSame(t, s.RangeQuery(r), ref.RangeQuery(r), "after drift rebuild")
	}
	if s.Len() != len(pts) {
		t.Fatalf("Len after rebuild = %d, want %d", s.Len(), len(pts))
	}
}

// TestShardedConcurrent exercises concurrent queries, writes, and
// background drift rebuilds together; run under -race this is the
// data-race acceptance test for the serving layer.
func TestShardedConcurrent(t *testing.T) {
	pts := testData(6000, 81)
	qs := testWorkload(400, 82)
	s := newTestSharded(t, pts, qs, wazi.WithShards(6),
		wazi.WithRebuildInterval(5*time.Millisecond),
		wazi.WithDriftWindow(128), wazi.WithDriftThreshold(0.4),
		wazi.WithCompactThreshold(128))

	drifted := workload.Skewed(dataset.CaliNev, 400, 0.0256e-2, 83)
	var inserted atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(600*time.Millisecond, func() { close(stop) })

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 5 {
				case 0:
					s.RangeQuery(qs[rng.Intn(len(qs))])
				case 1:
					s.RangeQuery(drifted[rng.Intn(len(drifted))])
				case 2:
					s.PointQuery(pts[rng.Intn(len(pts))])
				case 3:
					s.KNN(wazi.Point{X: rng.Float64(), Y: rng.Float64()}, 4)
				default:
					s.RangeCount(drifted[rng.Intn(len(drifted))])
				}
			}
		}(int64(100 + g))
	}
	// One writer mixing inserts and deletes of its own points.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		var mine []wazi.Point
		for {
			select {
			case <-stop:
				return
			default:
			}
			if len(mine) > 0 && rng.Intn(4) == 0 {
				p := mine[len(mine)-1]
				mine = mine[:len(mine)-1]
				if !s.Delete(p) {
					t.Error("failed to delete a point this goroutine inserted")
					return
				}
				inserted.Add(-1)
			} else {
				p := wazi.Point{X: rng.Float64(), Y: rng.Float64()}
				s.Insert(p)
				mine = append(mine, p)
				inserted.Add(1)
			}
		}
	}()
	wg.Wait()

	if got, want := s.Len(), len(pts)+int(inserted.Load()); got != want {
		t.Fatalf("Len after concurrent run = %d, want %d", got, want)
	}
	if s.Rebuilds() == 0 {
		t.Error("expected at least one background rebuild during the concurrent run")
	}
	st := s.Stats()
	if st.RangeQueries == 0 || st.Inserts == 0 {
		t.Error("stats not recorded under concurrency")
	}
}

// TestShardedEdgeCases covers tiny inputs, more shards than points, empty
// construction, and queries outside the domain.
func TestShardedEdgeCases(t *testing.T) {
	if _, err := wazi.NewSharded(nil, nil); err != wazi.ErrNoPoints {
		t.Fatalf("empty build err = %v, want ErrNoPoints", err)
	}
	one := []wazi.Point{{X: 0.5, Y: 0.5}}
	s := newTestSharded(t, one, nil, wazi.WithShards(8), wazi.WithoutAutoRebuild())
	if s.Len() != 1 || !s.PointQuery(one[0]) {
		t.Fatal("single-point sharded index broken")
	}
	if got := s.RangeQuery(wazi.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); len(got) != 1 {
		t.Fatalf("full query returned %d points", len(got))
	}
	if got := s.RangeQuery(wazi.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}); got != nil {
		t.Fatalf("out-of-domain query returned %d points", len(got))
	}
	if s.KNN(wazi.Point{X: 0, Y: 0}, 3)[0] != one[0] {
		t.Fatal("KNN on tiny index broken")
	}
	// Duplicate-heavy data: equal Z-keys must stay in one shard.
	dup := make([]wazi.Point, 500)
	for i := range dup {
		dup[i] = wazi.Point{X: 0.25 * float64(i%2), Y: 0.25 * float64(i%3)}
	}
	sd := newTestSharded(t, dup, nil, wazi.WithShards(4), wazi.WithoutAutoRebuild())
	ref := index.NewBrute(dup)
	r := wazi.Rect{MinX: 0, MinY: 0, MaxX: 0.3, MaxY: 0.6}
	assertSame(t, sd.RangeQuery(r), ref.RangeQuery(r), "duplicates")
	if !sd.Delete(dup[0]) {
		t.Fatal("delete of duplicated point failed")
	}
	if got, want := sd.RangeCount(wazi.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}), len(dup)-1; got != want {
		t.Fatalf("count after one delete = %d, want %d", got, want)
	}
}

// TestRebuildAdvisorConcurrent hammers one advisor from many goroutines;
// meaningful under -race (satellite fix: Observe/Drift used to race).
func TestRebuildAdvisorConcurrent(t *testing.T) {
	bounds := wazi.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	a := wazi.NewRebuildAdvisor(bounds, testWorkload(500, 91), 256, 0.6)
	qs := testWorkload(2000, 92)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				a.Observe(qs[(off*250+i)%len(qs)])
				if i%10 == 0 {
					a.Drift()
					a.RebuildRecommended()
				}
			}
		}(g)
	}
	wg.Wait()
	if a.Observed() != 2000 {
		t.Fatalf("Observed = %d, want 2000", a.Observed())
	}
}
