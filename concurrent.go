package wazi

import "sync"

// Concurrent wraps an Index for use from multiple goroutines. Operations
// are serialized with a single mutex: inserts may restructure the tree, so
// reads and writes take turns. It is the simplest safe wrapper — and it
// cannot scale past one core. For read-heavy parallel serving use Sharded,
// which partitions the data across per-shard indexes and serves reads
// lock-free.
type Concurrent struct {
	mu  sync.Mutex
	idx *Index
}

// NewConcurrent wraps idx. The wrapped index must not be used directly
// afterwards.
func NewConcurrent(idx *Index) *Concurrent { return &Concurrent{idx: idx} }

// RangeQuery returns all points inside r.
func (c *Concurrent) RangeQuery(r Rect) []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.RangeQuery(r)
}

// RangeCount returns the number of points inside r.
func (c *Concurrent) RangeCount(r Rect) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.RangeCount(r)
}

// PointQuery reports whether p is indexed.
func (c *Concurrent) PointQuery(p Point) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.PointQuery(p)
}

// KNN returns the k nearest neighbours of q.
func (c *Concurrent) KNN(q Point, k int) []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.KNN(q, k)
}

// Insert adds p.
func (c *Concurrent) Insert(p Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.Insert(p)
}

// Delete removes one point equal to p.
func (c *Concurrent) Delete(p Point) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Delete(p)
}

// Len returns the number of indexed points.
func (c *Concurrent) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Len()
}

// Snapshot returns the current counter values.
func (c *Concurrent) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return *c.idx.Stats()
}
