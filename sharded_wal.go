package wazi

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/wazi-index/wazi/internal/wal"
)

// This file threads the group-commit write-ahead log (internal/wal) through
// the Sharded write path. With WithWAL configured, every Insert/Delete
// appends a logical record before it is acknowledged, Save stamps the
// snapshot with the log position it covers, and NewSharded/LoadSharded
// replay the log tail on startup so a restart recovers exactly the
// acknowledged writes. See docs/DURABILITY.md.

// WithWAL puts a write-ahead log in dir: every acknowledged Insert/Delete
// is durable per the configured sync policy (WithWALSync, default group
// commit), and the next NewSharded or LoadSharded over the same directory
// replays the tail. The directory must not be shared by two live instances.
func WithWAL(dir string) ShardedOption {
	return func(c *shardedConfig) { c.walDir = dir }
}

// WithWALSync sets the WAL durability policy: "group" (batched fsync before
// acknowledgement, the default), "always" (fsync every write), or "none"
// (no fsync on the write path; survives process crashes via the page cache,
// not power loss). An unknown policy fails NewSharded/LoadSharded.
func WithWALSync(policy string) ShardedOption {
	return func(c *shardedConfig) { c.walSync = policy }
}

// WithWALGroupWindow delays the group-commit leader by d before its fsync,
// widening batches at the cost of write latency. The default 0 relies on
// natural batching under concurrency.
func WithWALGroupWindow(d time.Duration) ShardedOption {
	return func(c *shardedConfig) { c.walGroupWindow = d }
}

// WithWALSegmentBytes sets the WAL segment rotation threshold (default
// 16 MiB). Small values exist for tests that need to exercise rotation and
// truncation cheaply.
func WithWALSegmentBytes(n int64) ShardedOption {
	return func(c *shardedConfig) { c.walSegmentBytes = n }
}

// withWALFS substitutes the WAL's filesystem — the crash-injection seam
// (internal/indextest.CrashFS).
func withWALFS(fs wal.FS) ShardedOption {
	return func(c *shardedConfig) { c.walFS = fs }
}

// walOpBytes is the fixed logical record payload: an op byte (0 insert,
// 1 delete) followed by the point's two little-endian float64 coordinates.
const walOpBytes = 17

// appendWALOp appends the canonical payload encoding of one logical write.
func appendWALOp(dst []byte, p Point, del bool) []byte {
	var rec [walOpBytes]byte
	if del {
		rec[0] = 1
	}
	binary.LittleEndian.PutUint64(rec[1:9], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(rec[9:17], math.Float64bits(p.Y))
	return append(dst, rec[:]...)
}

// decodeWALOp decodes one logical write.
func decodeWALOp(payload []byte) (p Point, del bool, err error) {
	if len(payload) != walOpBytes {
		return Point{}, false, fmt.Errorf("wazi: wal record payload is %d bytes, want %d", len(payload), walOpBytes)
	}
	switch payload[0] {
	case 0:
	case 1:
		del = true
	default:
		return Point{}, false, fmt.Errorf("wazi: wal record has unknown op %d", payload[0])
	}
	p.X = math.Float64frombits(binary.LittleEndian.Uint64(payload[1:9]))
	p.Y = math.Float64frombits(binary.LittleEndian.Uint64(payload[9:17]))
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		return Point{}, false, fmt.Errorf("wazi: wal record carries NaN coordinates")
	}
	return p, del, nil
}

// walAppendLocked logs one write. Called with s.mu held, immediately after
// the in-memory apply: sequence order and apply order are therefore
// identical, so replay reproduces exactly the applied history. Returns 0
// when no wait is needed (WAL disabled, replaying, or append failed — the
// failure is sticky and surfaces through WALStats/WALErr).
func (s *Sharded) walAppendLocked(p Point, del bool) uint64 {
	if s.wal == nil || s.walRecovering {
		return 0
	}
	s.walBuf = appendWALOp(s.walBuf[:0], p, del)
	seq, err := s.wal.Append(s.walBuf)
	if err != nil {
		return 0
	}
	return seq
}

// walAck blocks until seq is durable — the write path's acknowledgement
// gate, called after s.mu is released so fsyncs never block other writers'
// in-memory applies (that is what makes group commit batch).
func (s *Sharded) walAck(seq uint64) {
	if seq == 0 || s.wal == nil {
		return
	}
	s.wal.WaitDurable(seq)
}

// initWAL opens the log and replays every record past afterSeq through the
// normal write path (the same replay idiom PR 5's migrations use), with
// re-logging suppressed. Called during construction after the snapshot and
// pool exist but before the background loop starts, so no concurrency.
func (s *Sharded) initWAL(afterSeq uint64) error {
	if s.opts.walDir == "" {
		return nil
	}
	sync, err := wal.ParseSync(s.opts.walSync)
	if err != nil {
		return err
	}
	w, err := wal.Open(wal.Options{
		Dir:          s.opts.walDir,
		Sync:         sync,
		GroupWindow:  s.opts.walGroupWindow,
		SegmentBytes: s.opts.walSegmentBytes,
		FS:           s.opts.walFS,
	})
	if err != nil {
		return err
	}
	if s.obs != nil {
		w.SetFsyncObs(s.obs.WALFsync)
	}
	s.wal = w
	s.walRecovering = true
	st, err := w.Replay(afterSeq, func(seq uint64, payload []byte) error {
		p, del, err := decodeWALOp(payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		if del {
			s.Delete(p)
		} else {
			s.Insert(p)
		}
		return nil
	})
	s.walRecovering = false
	if err != nil {
		w.Close()
		s.wal = nil
		return fmt.Errorf("wazi: replaying wal: %w", err)
	}
	s.walRecovered = st
	return nil
}

// closeWAL seals the log on Close (final fsync, segment closed).
func (s *Sharded) closeWAL() {
	if s.wal != nil {
		s.wal.Close()
	}
}

// WALStats reports the write-ahead log's state; Enabled is false when the
// index runs without one.
type WALStats struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Sync    string `json:"sync,omitempty"`
	// Appends counts records logged since startup; AppendedBytes their
	// encoded size; Fsyncs, Rotations, Truncations the respective events.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	Fsyncs        int64 `json:"fsyncs"`
	Rotations     int64 `json:"rotations"`
	Truncations   int64 `json:"truncations"`
	// LastSeq is the last assigned sequence number; DurableSeq the highest
	// covered by an fsync.
	LastSeq    uint64 `json:"last_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	// RecoveredRecords / RecoveredSeq describe the startup replay: how many
	// records were applied past the snapshot's cut and the log's last valid
	// sequence number. RecoveredTorn reports a torn tail was discarded.
	RecoveredRecords int    `json:"recovered_records"`
	RecoveredSeq     uint64 `json:"recovered_seq"`
	RecoveredTorn    bool   `json:"recovered_torn"`
	// Err is the sticky error message, empty while the log is healthy.
	Err string `json:"err,omitempty"`
}

// WALStats snapshots the write-ahead log's counters and recovery status.
func (s *Sharded) WALStats() WALStats {
	if s.wal == nil {
		return WALStats{}
	}
	st := s.wal.Stats()
	sync, _ := wal.ParseSync(s.opts.walSync)
	out := WALStats{
		Enabled:          true,
		Dir:              s.opts.walDir,
		Sync:             sync.String(),
		Appends:          st.Appends,
		AppendedBytes:    st.AppendedBytes,
		Fsyncs:           st.Fsyncs,
		Rotations:        st.Rotations,
		Truncations:      st.Truncations,
		LastSeq:          st.LastSeq,
		DurableSeq:       st.DurableSeq,
		RecoveredRecords: s.walRecovered.Records,
		RecoveredSeq:     s.walRecovered.LastSeq,
		RecoveredTorn:    s.walRecovered.Torn,
	}
	if st.Err != nil {
		out.Err = st.Err.Error()
	}
	return out
}

// WALErr returns the log's sticky error: non-nil once any WAL filesystem
// operation has failed, after which no further write is durable (the index
// keeps serving, but a caller that requires durability must treat writes
// as unacknowledged). Nil when the WAL is disabled or healthy.
func (s *Sharded) WALErr() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Err()
}

// TruncateWAL drops log segments made redundant by the most recent Save:
// every record at or below the snapshot's recorded cut. Call it only once
// that Save's output is durably on disk (fsynced, and renamed into place if
// written via a temp file) — truncating against a snapshot that can still
// be lost would lose acknowledged writes with it. This is the
// Save-truncation invariant; cmd/waziserve's snapshot writer is the
// reference caller. Returns how many segments were removed.
func (s *Sharded) TruncateWAL() (int, error) {
	if s.wal == nil {
		return 0, nil
	}
	return s.wal.TruncateBefore(s.lastSaveCut.Load())
}

// MultisetChecksum is an order-independent checksum over a point multiset:
// equal multisets — any order, including duplicates — produce equal sums.
// The crash-recovery tests and the server's /debug/checksum endpoint use it
// to compare full-index contents across restarts.
func MultisetChecksum(pts []Point) uint64 {
	var sum uint64
	for _, p := range pts {
		h := math.Float64bits(p.X)*0x9e3779b97f4a7c15 ^ math.Float64bits(p.Y)*0xc2b2ae3d27d4eb4f
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		sum += h
	}
	return sum
}

// ContentChecksum materializes every shard of the current snapshot and
// returns the multiset checksum of the full contents plus the live point
// count. It reads a single immutable snapshot, so it is safe concurrent
// with writes — the result is the checksum of one consistent state.
func (s *Sharded) ContentChecksum() (sum uint64, points int) {
	for _, ss := range s.snap.Load().shards {
		pts := materialize(ss)
		sum += MultisetChecksum(pts)
		points += len(pts)
	}
	return sum, points
}
