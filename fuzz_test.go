package wazi

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz targets over the persistence decoders: arbitrary input must produce
// a clean error or a usable index — never a panic. Seed corpora come from
// real Save output so the fuzzer starts inside the format and mutates
// outward.

func fuzzPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func FuzzLoad(f *testing.F) {
	pts := fuzzPoints(600, 1)
	idx, err := New(pts, WithLeafSize(32), WithSeed(2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A truncation and a bit flip, so the corpus starts near the failure
	// modes that matter.
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot the decoder accepted must be queryable without
		// panicking.
		got.RangeQuery(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
		got.PointQuery(Point{X: 0.5, Y: 0.5})
		_ = got.Len()
	})
}

func FuzzLoadSharded(f *testing.F) {
	pts := fuzzPoints(800, 3)
	qs := make([]Rect, 40)
	rng := rand.New(rand.NewSource(4))
	for i := range qs {
		cx, cy := rng.Float64(), rng.Float64()
		qs[i] = Rect{MinX: cx - 0.05, MinY: cy - 0.05, MaxX: cx + 0.05, MaxY: cy + 0.05}
	}
	s, err := NewSharded(pts, qs, WithShards(3), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(32), WithSeed(5)))
	if err != nil {
		f.Fatal(err)
	}
	// Leave some uncompacted write-buffer and tombstone state so those
	// record fields are in the corpus.
	for i := 0; i < 50; i++ {
		s.Insert(Point{X: rng.Float64(), Y: rng.Float64()})
		s.Delete(pts[i])
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	s.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)/4] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSharded(bytes.NewReader(data), WithoutAutoRebuild())
		if err != nil {
			return
		}
		got.RangeQuery(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
		_ = got.Len()
		got.Close()
	})
}
