package wazi

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/shard"
)

// Fuzz targets over the persistence decoders: arbitrary input must produce
// a clean error or a usable index — never a panic. Seed corpora come from
// real Save output so the fuzzer starts inside the format and mutates
// outward.

func fuzzPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func FuzzLoad(f *testing.F) {
	pts := fuzzPoints(600, 1)
	idx, err := New(pts, WithLeafSize(32), WithSeed(2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A truncation and a bit flip, so the corpus starts near the failure
	// modes that matter.
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot the decoder accepted must be queryable without
		// panicking.
		got.RangeQuery(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
		got.PointQuery(Point{X: 0.5, Y: 0.5})
		_ = got.Len()
	})
}

func FuzzLoadSharded(f *testing.F) {
	pts := fuzzPoints(800, 3)
	qs := make([]Rect, 40)
	rng := rand.New(rand.NewSource(4))
	for i := range qs {
		cx, cy := rng.Float64(), rng.Float64()
		qs[i] = Rect{MinX: cx - 0.05, MinY: cy - 0.05, MaxX: cx + 0.05, MaxY: cy + 0.05}
	}
	s, err := NewSharded(pts, qs, WithShards(3), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(32), WithSeed(5)))
	if err != nil {
		f.Fatal(err)
	}
	// Leave some uncompacted write-buffer and tombstone state so those
	// record fields are in the corpus.
	for i := 0; i < 50; i++ {
		s.Insert(Point{X: rng.Float64(), Y: rng.Float64()})
		s.Delete(pts[i])
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	s.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)/4] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSharded(bytes.NewReader(data), WithoutAutoRebuild())
		if err != nil {
			return
		}
		got.RangeQuery(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
		_ = got.Len()
		got.Close()
	})
}

// FuzzLoadShardedMigration targets the migration half of the sharded
// snapshot decoder: the epoch-carrying header and the plan-migration record
// a mid-flight Save writes. Seeds are REAL mid-migration snapshots — taken
// while the repartitioner's in-flight state and target plan were installed
// — so the fuzzer starts inside the record format and mutates outward.
// Arbitrary input must produce a clean error or a usable index, never a
// panic.
func FuzzLoadShardedMigration(f *testing.F) {
	pts := fuzzPoints(700, 7)
	rng := rand.New(rand.NewSource(8))
	head := make([]Rect, 40)
	for i := range head {
		cx, cy := 0.2+rng.Float64()*0.1, 0.2+rng.Float64()*0.1
		head[i] = Rect{MinX: cx - 0.04, MinY: cy - 0.04, MaxX: cx + 0.04, MaxY: cy + 0.04}
	}
	s, err := NewSharded(pts, head, WithShards(4), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(32), WithSeed(9)))
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	// Drive a shifted hotspot and migrate once, so the snapshot carries a
	// nonzero epoch; then install a second in-flight migration and save.
	tail := make([]Rect, 1500)
	for i := range tail {
		cx, cy := 0.8+rng.Float64()*0.1, 0.8+rng.Float64()*0.1
		tail[i] = Rect{MinX: cx - 0.04, MinY: cy - 0.04, MaxX: cx + 0.04, MaxY: cy + 0.04}
	}
	for _, q := range tail {
		s.RangeQuery(q)
	}
	if !s.Repartition() {
		f.Fatal("seed setup: repartition declined")
	}
	for i := 0; i < 30; i++ {
		s.Insert(Point{X: rng.Float64(), Y: rng.Float64()})
	}
	target := shard.Partition(pts, head, 3)
	s.mu.Lock()
	s.repartInFlight = true
	s.repartTarget = target
	// A couple of logged writes, as a real mid-migration capture would hold.
	s.repartLog = []shardOp{{p: Point{X: 0.5, Y: 0.5}}, {p: pts[0], del: true}}
	s.mu.Unlock()
	var mid bytes.Buffer
	err = s.Save(&mid)
	s.mu.Lock()
	s.repartInFlight = false
	s.repartTarget = nil
	s.repartLog = nil
	s.mu.Unlock()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(mid.Bytes())
	f.Add(mid.Bytes()[:len(mid.Bytes())/2])
	f.Add(mid.Bytes()[:40]) // header survives, migration record truncated
	flipped := append([]byte(nil), mid.Bytes()...)
	flipped[len(flipped)/5] ^= 0x20
	f.Add(flipped)
	// An idle-migration snapshot too, so both record shapes are in corpus.
	var idle bytes.Buffer
	if err := s.Save(&idle); err != nil {
		f.Fatal(err)
	}
	f.Add(idle.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSharded(bytes.NewReader(data), WithoutAutoRebuild())
		if err != nil {
			return
		}
		// An accepted snapshot must be fully usable: queryable, writable,
		// migratable, and re-saveable without panicking.
		got.RangeQuery(Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9})
		got.PointQuery(Point{X: 0.5, Y: 0.5})
		_ = got.Len()
		_ = got.PlanEpoch()
		_ = got.Migrating()
		got.Insert(Point{X: 0.25, Y: 0.75})
		got.CheckRepartition()
		var out bytes.Buffer
		_ = got.Save(&out)
		got.Close()
	})
}
