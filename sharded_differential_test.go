package wazi

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/storage"
)

// shardedAsIndex adapts Sharded to the conformance suite's index.Index
// surface (Stats by value becomes a snapshot pointer).
type shardedAsIndex struct{ s *Sharded }

func (a shardedAsIndex) RangeQuery(r geom.Rect) []geom.Point { return a.s.RangeQuery(r) }
func (a shardedAsIndex) PointQuery(p geom.Point) bool        { return a.s.PointQuery(p) }
func (a shardedAsIndex) Len() int                            { return a.s.Len() }
func (a shardedAsIndex) Bytes() int64                        { return a.s.Bytes() }
func (a shardedAsIndex) Insert(p geom.Point)                 { a.s.Insert(p) }
func (a shardedAsIndex) Delete(p geom.Point) bool            { return a.s.Delete(p) }
func (a shardedAsIndex) Stats() *storage.Stats {
	st := a.s.Stats()
	return &st
}

// Repartition opts the adapter into the differential suite's mid-stream
// plan-migration battery (indextest.Repartitioner).
func (a shardedAsIndex) Repartition() bool { return a.s.Repartition() }

// TestShardedDifferentialConformance runs the full differential conformance
// suite over Sharded on both storage backends: every subtest builds a RAM
// twin and a disk-backed twin (fresh page-file directory each), which must
// answer identically to each other and to brute force, with page-access
// stats parity, including under insert/delete churn.
func TestShardedDifferentialConformance(t *testing.T) {
	dir := t.TempDir()
	n := 0
	var built []*Sharded
	t.Cleanup(func() {
		for _, s := range built {
			s.Close()
		}
	})
	build := func(disk bool) indextest.Builder {
		return func(pts []geom.Point, qs []geom.Rect) index.Index {
			opts := []ShardedOption{
				WithShards(4), WithoutAutoRebuild(), WithCompactThreshold(400),
				WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
			}
			if disk {
				n++
				opts = append(opts, WithShardedStorage(filepath.Join(dir, fmt.Sprintf("d%03d", n)), 32))
			}
			s, err := NewSharded(pts, qs, opts...)
			if err != nil {
				panic(err)
			}
			built = append(built, s)
			return shardedAsIndex{s}
		}
	}
	indextest.Differential(t, build(false), build(true))
}
