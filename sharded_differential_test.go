package wazi

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/storage"
)

// shardedAsIndex adapts Sharded to the conformance suite's index.Index
// surface (Stats by value becomes a snapshot pointer).
type shardedAsIndex struct {
	s *Sharded
	// reopen recovers a fresh instance from the build-time snapshot plus
	// the WAL tail (indextest.Recoverable); nil for builds without a WAL.
	reopen func(t *testing.T) index.Index
}

func (a shardedAsIndex) RangeQuery(r geom.Rect) []geom.Point { return a.s.RangeQuery(r) }
func (a shardedAsIndex) RangeCount(r geom.Rect) int          { return a.s.RangeCount(r) }
func (a shardedAsIndex) PointQuery(p geom.Point) bool        { return a.s.PointQuery(p) }
func (a shardedAsIndex) Len() int                            { return a.s.Len() }
func (a shardedAsIndex) Bytes() int64                        { return a.s.Bytes() }
func (a shardedAsIndex) Insert(p geom.Point)                 { a.s.Insert(p) }
func (a shardedAsIndex) Delete(p geom.Point) bool            { return a.s.Delete(p) }
func (a shardedAsIndex) Stats() *storage.Stats {
	st := a.s.Stats()
	return &st
}

// Repartition opts the adapter into the differential suite's mid-stream
// plan-migration battery (indextest.Repartitioner).
func (a shardedAsIndex) Repartition() bool { return a.s.Repartition() }

// DropCaches opts the adapter into the cold-cache battery
// (indextest.CacheDropper): every disk-backed shard's block cache is
// emptied mid-stream, forcing zero-copy refaults.
func (a shardedAsIndex) DropCaches() { a.s.DropCaches() }

// Reopen opts the adapter into the recover-vs-never-crashed battery
// (indextest.Recoverable): it simulates a crash-restart by recovering from
// the build-time snapshot plus the live WAL tail without closing the
// original instance.
func (a shardedAsIndex) Reopen(t *testing.T) index.Index { return a.reopen(t) }

// TestShardedDifferentialConformance runs the full differential conformance
// suite over Sharded on both storage backends: every subtest builds a RAM
// twin and a disk-backed twin (fresh page-file directory each), which must
// answer identically to each other and to brute force, with page-access
// stats parity, including under insert/delete churn.
func TestShardedDifferentialConformance(t *testing.T) {
	dir := t.TempDir()
	n := 0
	var built []*Sharded
	t.Cleanup(func() {
		for _, s := range built {
			s.Close()
		}
	})
	// mkOpts builds one instance's option set. Every build gets its own WAL
	// (sync "none": page-cache durability is all a same-process reopen
	// needs, and it keeps the churn batteries off the fsync path); disk
	// builds get their own page-file directory.
	mkOpts := func(walDir, storageDir string) []ShardedOption {
		opts := []ShardedOption{
			WithShards(4), WithoutAutoRebuild(), WithCompactThreshold(400),
			WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
			WithWAL(walDir), WithWALSync("none"),
		}
		if storageDir != "" {
			opts = append(opts, WithShardedStorage(storageDir, 32))
		}
		return opts
	}
	build := func(disk bool) indextest.Builder {
		return func(pts []geom.Point, qs []geom.Rect) index.Index {
			n++
			walDir := filepath.Join(dir, fmt.Sprintf("wal%03d", n))
			storageDir := ""
			if disk {
				storageDir = filepath.Join(dir, fmt.Sprintf("d%03d", n))
			}
			s, err := NewSharded(pts, qs, mkOpts(walDir, storageDir)...)
			if err != nil {
				panic(err)
			}
			built = append(built, s)
			// The baseline snapshot taken at build time is what a reopen
			// recovers from; everything after it lives only in the WAL.
			var baseline bytes.Buffer
			if err := s.Save(&baseline); err != nil {
				panic(err)
			}
			reopen := func(t *testing.T) index.Index {
				t.Helper()
				// Crash-restart: the live instance is NOT closed; recovery
				// reopens the same WAL and storage directories, exactly as
				// a restarted process would. The load-time stale-page sweep
				// unlinks the live twin's newer-generation files, but its
				// open descriptors keep them readable, so the never-crashed
				// instance stays comparable.
				r, err := LoadSharded(bytes.NewReader(baseline.Bytes()), mkOpts(walDir, storageDir)...)
				if err != nil {
					t.Fatalf("Reopen: recovery from snapshot+wal failed: %v", err)
				}
				built = append(built, r)
				return shardedAsIndex{s: r}
			}
			return shardedAsIndex{s: s, reopen: reopen}
		}
	}
	indextest.Differential(t, build(false), build(true))
}
