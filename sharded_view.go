package wazi

import "github.com/wazi-index/wazi/internal/obs"

// View is a read-only handle pinned to one immutable snapshot of a Sharded
// index. Every query on a View observes exactly the state that existed when
// the View was taken — writes, compactions, and rebuilds that land afterwards
// are invisible to it — so a group of reads executed against one View forms
// a single consistent snapshot pass. That is what the serving layer's
// request coalescer batches concurrent HTTP reads into, and what the /v1/batch
// endpoint uses to make a mixed request's reads mutually consistent.
//
// A View is cheap (one atomic pointer load), never blocks or is blocked by
// writers, and is safe for concurrent use. It holds the snapshot's memory
// live for as long as it is referenced, so Views are meant to be short-lived:
// take one per batch, drop it when the batch completes.
//
// Queries through a View still feed the per-shard drift advisors and
// recent-query windows, and still count in Stats — a coalesced read is a
// served read.
type View struct {
	s    *Sharded
	snap *shardedSnapshot
	// tr, when set via WithTrace, receives per-shard scan and page-I/O
	// spans from every query run through this handle.
	tr *obs.QueryTrace
}

// View pins the current snapshot and returns a read-only handle to it.
func (s *Sharded) View() *View {
	return &View{s: s, snap: s.snap.Load()}
}

// WithTrace returns a View on the same pinned snapshot whose queries record
// spans (per-shard scans, page-store reads) into tr. The receiver is not
// modified, so one snapshot pass can serve traced and un-traced requests
// side by side — which is how the serving layer's coalescer attributes a
// shared snapshot pass to every request it batched. A nil tr returns the
// receiver unchanged.
func (v *View) WithTrace(tr *obs.QueryTrace) *View {
	if tr == nil {
		return v
	}
	return &View{s: v.s, snap: v.snap, tr: tr}
}

// RangeQuery returns all points inside r as of the pinned snapshot.
func (v *View) RangeQuery(r Rect) []Point {
	v.s.rangeQs.Add(1)
	return v.s.rangeFromSnap(v.snap, r, v.tr)
}

// RangeQueryAppend appends the points inside r to dst as of the pinned
// snapshot — the buffer-reusing form the serving layer cycles its pooled
// response buffers through.
func (v *View) RangeQueryAppend(dst []Point, r Rect) []Point {
	v.s.rangeQs.Add(1)
	return v.s.rangeAppendFromSnap(dst, v.snap, r, v.tr)
}

// RangeCount returns the number of points inside r as of the pinned
// snapshot.
func (v *View) RangeCount(r Rect) int {
	v.s.rangeQs.Add(1)
	return v.s.countFromSnap(v.snap, r, v.tr)
}

// PointQuery reports whether p was indexed as of the pinned snapshot.
func (v *View) PointQuery(p Point) bool {
	v.s.pointQs.Add(1)
	return v.s.pointFromSnap(v.snap, p, v.tr)
}

// KNN returns the k points nearest to q, closest first, as of the pinned
// snapshot.
func (v *View) KNN(q Point, k int) []Point {
	v.s.knnQs.Add(1)
	return v.s.knnFromSnap(v.snap, q, k, v.tr)
}

// KNNAppend appends the k points nearest to q to dst, closest first, as of
// the pinned snapshot.
func (v *View) KNNAppend(dst []Point, q Point, k int) []Point {
	v.s.knnQs.Add(1)
	return v.s.knnAppendFromSnap(dst, v.snap, q, k, v.tr)
}

// Len returns the number of points the pinned snapshot serves.
func (v *View) Len() int {
	n := 0
	for _, ss := range v.snap.shards {
		n += ss.live()
	}
	return n
}
