package wazi_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// sortPoints orders a result set canonically so fan-out order differences
// don't fail equivalence checks.
func sortPoints(pts []wazi.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

// TestShardedSaveLoadRoundTrip asserts query equivalence across a
// save/reload cycle, including buffered writes and tombstones that have not
// been compacted into any shard index.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	pts := dataset.Generate(dataset.NewYork, 4000, 1)
	qs := workload.Skewed(dataset.NewYork, 200, 0.0256e-2, 2)
	s := newTestSharded(t, pts, qs, wazi.WithShards(8), wazi.WithoutAutoRebuild())

	// Dirty the state: buffered inserts, tombstones, and some observed
	// queries so shard snapshots are not pristine post-build artifacts.
	extra := dataset.Uniform(100, 3)
	for _, p := range extra {
		s.Insert(p)
	}
	for _, p := range pts[:50] {
		if !s.Delete(p) {
			t.Fatalf("delete of indexed point %v failed", p)
		}
	}
	for _, q := range qs[:50] {
		s.RangeQuery(q)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := wazi.LoadSharded(bytes.NewReader(buf.Bytes()), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	defer r.Close()

	if r.Len() != s.Len() {
		t.Fatalf("Len: loaded %d, want %d", r.Len(), s.Len())
	}
	if r.NumShards() != s.NumShards() {
		t.Fatalf("NumShards: loaded %d, want %d", r.NumShards(), s.NumShards())
	}
	if r.Rebuilds() != s.Rebuilds() {
		t.Fatalf("Rebuilds: loaded %d, want %d", r.Rebuilds(), s.Rebuilds())
	}

	// The recent-query windows must survive the reload: they are what a
	// post-restart drift rebuild trains on, and what the next Save persists.
	sawRecent := false
	for i := 0; i < s.NumShards(); i++ {
		want, got := s.RecentWindow(i), r.RecentWindow(i)
		if len(want) != len(got) {
			t.Fatalf("shard %d recent window: %d queries before save, %d after load", i, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("shard %d recent window query %d changed across reload", i, j)
			}
		}
		sawRecent = sawRecent || len(want) > 0
	}
	if !sawRecent {
		t.Fatal("no shard had observed queries; the window-preservation check checked nothing")
	}

	for i, q := range qs {
		want := s.RangeQuery(q)
		got := r.RangeQuery(q)
		sortPoints(want)
		sortPoints(got)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d hits before save, %d after load", i, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("query %d hit %d: %v before save, %v after load", i, j, want[j], got[j])
			}
		}
		if wc, gc := s.RangeCount(q), r.RangeCount(q); wc != gc {
			t.Fatalf("count %d: %d before save, %d after load", i, wc, gc)
		}
	}
	for _, p := range append(append([]wazi.Point{}, pts[:100]...), extra[:20]...) {
		if s.PointQuery(p) != r.PointQuery(p) {
			t.Fatalf("PointQuery(%v) disagrees across reload", p)
		}
	}
	for _, q := range []wazi.Point{{X: 0.5, Y: 0.5}, {X: 0.1, Y: 0.9}} {
		want, got := s.KNN(q, 10), r.KNN(q, 10)
		if len(want) != len(got) {
			t.Fatalf("KNN(%v): %d before save, %d after load", q, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("KNN(%v) rank %d: %v before save, %v after load", q, j, want[j], got[j])
			}
		}
	}

	// The loaded index must stay writable and route inserts identically.
	p := wazi.Point{X: 0.123, Y: 0.456}
	s.Insert(p)
	r.Insert(p)
	if !s.PointQuery(p) || !r.PointQuery(p) {
		t.Fatal("post-reload insert not visible")
	}
}

// TestLoadShardedRefusesWrongVersion asserts the versioned header is
// enforced with an actionable error instead of a misparse.
func TestLoadShardedRefusesWrongVersion(t *testing.T) {
	pts := dataset.Generate(dataset.Japan, 500, 1)
	s := newTestSharded(t, pts, nil, wazi.WithShards(4), wazi.WithoutAutoRebuild())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// A gob stream's payload bytes are not position-independent, so rather
	// than bit-flip we re-encode a header with a hostile version through the
	// exported test hook: simplest is to check the two failure modes we can
	// construct — garbage input and truncation — and the version message via
	// a doctored save.
	if _, err := wazi.LoadSharded(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("LoadSharded accepted garbage")
	}
	if _, err := wazi.LoadSharded(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("LoadSharded accepted a truncated snapshot")
	}

	doctored := wazi.DoctorSnapshotVersion(t, &buf, 99)
	_, err := wazi.LoadSharded(bytes.NewReader(doctored))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("doctored version error = %v, want mention of version 99", err)
	}
}
