package wazi_test

// Benchmark harness: one testing.B benchmark (family) per table and figure
// of the paper's evaluation section. Each sub-benchmark reports the
// quantity the corresponding artifact plots — range-query ns/op for the
// latency figures, build seconds for Table 3, counter metrics for the
// Figure 13 ablation — at a scaled-down dataset size. cmd/waziexp runs the
// same experiments over all four regions and prints the full tables;
// EXPERIMENTS.md records paper-vs-measured shapes.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"sync"
	"testing"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/bench"
	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/workload"
)

// benchScale keeps the full `go test -bench=.` run in laptop territory.
// The shapes survive down-scaling; see DESIGN.md §2.
const benchScale = 25_000

var benchCfg = bench.Config{
	Scale:        benchScale,
	Queries:      800,
	PointQueries: 2_000,
	LeafSize:     256,
	Seed:         1,
	Regions:      []dataset.Region{dataset.NewYork},
}

// benchEnv caches datasets, workloads, and built indexes across the
// benchmark calibration reruns that the testing framework performs.
type benchEnv struct {
	mu        sync.Mutex
	workloads map[string]bench.Workloads
	indexes   map[string]bench.BuildResult
}

var env = &benchEnv{
	workloads: map[string]bench.Workloads{},
	indexes:   map[string]bench.BuildResult{},
}

func (e *benchEnv) workload(size int) bench.Workloads {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("ny-%d", size)
	w, ok := e.workloads[key]
	if !ok {
		w = bench.MakeWorkloads(dataset.NewYork, size, benchCfg)
		e.workloads[key] = w
	}
	return w
}

func (e *benchEnv) index(name string, size int, sel float64) (bench.BuildResult, []geom.Rect) {
	w := e.workload(size)
	qs := w.BySelectivity[sel]
	half := len(qs) / 2
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("%s-%d-%g", name, size, sel)
	br, ok := e.indexes[key]
	if !ok {
		br = bench.BuildIndex(name, w.Data, qs[:half], benchCfg)
		e.indexes[key] = br
	}
	return br, qs[half:]
}

func benchRange(b *testing.B, idx index.Index, qs []geom.Rect) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.RangeQuery(qs[i%len(qs)])
	}
}

// BenchmarkFig4RangeAllIndexes regenerates Figure 4: average range-query
// latency of all eleven indexes at the mid selectivity.
func BenchmarkFig4RangeAllIndexes(b *testing.B) {
	for _, name := range bench.AllIndexes {
		b.Run(name, func(b *testing.B) {
			br, qs := env.index(name, benchScale, bench.MidSelectivity)
			benchRange(b, br.Index, qs)
		})
	}
}

// BenchmarkFig6RangeBySelectivity regenerates Figure 6: the six main
// indexes across the four Table 2 selectivities.
func BenchmarkFig6RangeBySelectivity(b *testing.B) {
	for _, sel := range workload.Selectivities {
		for _, name := range bench.MainIndexes {
			b.Run(fmt.Sprintf("sel=%.4f%%/%s", sel*100, name), func(b *testing.B) {
				br, qs := env.index(name, benchScale, sel)
				benchRange(b, br.Index, qs)
			})
		}
	}
}

// BenchmarkFig7ImprovementOverBase regenerates Figure 7's inputs: Base and
// WaZI at every selectivity; the improvement percentages fall out of the
// ns/op ratios.
func BenchmarkFig7ImprovementOverBase(b *testing.B) {
	for _, sel := range workload.Selectivities {
		for _, name := range []string{"Base", "WaZI"} {
			b.Run(fmt.Sprintf("sel=%.4f%%/%s", sel*100, name), func(b *testing.B) {
				br, qs := env.index(name, benchScale, sel)
				benchRange(b, br.Index, qs)
			})
		}
	}
}

// BenchmarkFig8RangeByDatasetSize regenerates Figure 8: range latency at
// the mid selectivity across the size ladder.
func BenchmarkFig8RangeByDatasetSize(b *testing.B) {
	for _, size := range []int{benchScale / 4, benchScale, benchScale * 4} {
		for _, name := range bench.MainIndexes {
			b.Run(fmt.Sprintf("n=%d/%s", size, name), func(b *testing.B) {
				br, qs := env.index(name, size, bench.MidSelectivity)
				benchRange(b, br.Index, qs)
			})
		}
	}
}

// BenchmarkFig9ProjectionScan regenerates Figure 9: the projection/scan
// split, reported as custom metrics alongside the total ns/op.
func BenchmarkFig9ProjectionScan(b *testing.B) {
	for _, name := range bench.MainIndexes {
		b.Run(name, func(b *testing.B) {
			br, qs := env.index(name, benchScale, bench.MidSelectivity)
			ph, ok := br.Index.(bench.Phased)
			if !ok {
				b.Skipf("%s has no phased query path", name)
			}
			var proj, scan time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, p, s := ph.RangeQueryPhased(qs[i%len(qs)])
				proj += p
				scan += s
			}
			b.ReportMetric(float64(proj.Nanoseconds())/float64(b.N), "proj-ns/op")
			b.ReportMetric(float64(scan.Nanoseconds())/float64(b.N), "scan-ns/op")
		})
	}
}

// BenchmarkFig10PointQuery regenerates Figure 10: point-query latency
// across the size ladder.
func BenchmarkFig10PointQuery(b *testing.B) {
	for _, size := range []int{benchScale / 4, benchScale, benchScale * 4} {
		for _, name := range bench.MainIndexes {
			b.Run(fmt.Sprintf("n=%d/%s", size, name), func(b *testing.B) {
				br, _ := env.index(name, size, bench.MidSelectivity)
				pq := env.workload(size).Points
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = br.Index.PointQuery(pq[i%len(pq)])
				}
			})
		}
	}
}

// BenchmarkTab3Build regenerates Table 3: construction time per index. Each
// iteration builds the index from scratch.
func BenchmarkTab3Build(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, name := range []string{"Base", "CUR", "Flood", "QUASII", "STR", "WaZI"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bench.BuildIndex(name, w.Data, qs[:half], benchCfg)
			}
		})
	}
}

// BenchmarkTab5IndexSize regenerates Table 5's measurement: index footprint
// reported as a custom bytes metric (one build per run).
func BenchmarkTab5IndexSize(b *testing.B) {
	for _, name := range []string{"Base", "CUR", "Flood", "QUASII", "STR", "WaZI"} {
		b.Run(name, func(b *testing.B) {
			br, qs := env.index(name, benchScale, bench.MidSelectivity)
			benchRange(b, br.Index, qs)
			b.ReportMetric(float64(br.Index.Bytes()), "index-bytes")
		})
	}
}

// BenchmarkFig11Insert regenerates Figure 11 left: insert latency for the
// updatable indexes. Fresh indexes are built outside the timed loop;
// inserts stream uniform points.
func BenchmarkFig11Insert(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, name := range []string{"WaZI", "CUR", "Flood"} {
		b.Run(name, func(b *testing.B) {
			idx := bench.BuildIndex(name, w.Data, qs[:half], benchCfg).Index.(index.Updatable)
			inserts := workload.InsertBatch(200_000, 99)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Insert(inserts[i%len(inserts)])
			}
		})
	}
}

// BenchmarkFig12Drift regenerates Figure 12: Base and WaZI range latency
// under 0%, 50%, and 100% skewed workload change.
func BenchmarkFig12Drift(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	drifted := workload.Skewed(dataset.Iberia, len(qs)-half, bench.MidSelectivity, 77)
	for _, chg := range []float64{0, 0.5, 1.0} {
		mixed := workload.Mix(qs[half:], drifted, chg, 78)
		for _, name := range []string{"Base", "WaZI"} {
			b.Run(fmt.Sprintf("change=%.0f%%/%s", chg*100, name), func(b *testing.B) {
				br, _ := env.index(name, benchScale, bench.MidSelectivity)
				benchRange(b, br.Index, mixed)
			})
		}
	}
}

// BenchmarkFig13Ablation regenerates Figure 13: the four construction
// variants at the three ablation selectivities, with the per-query counter
// metrics (excess points, bbs checked, pages scanned) reported alongside
// latency.
func BenchmarkFig13Ablation(b *testing.B) {
	for _, sel := range workload.AblationSelectivities {
		for _, name := range []string{"Base", "WaZI", "Base+SK", "WaZI-SK"} {
			b.Run(fmt.Sprintf("sel=%.4f%%/%s", sel*100, name), func(b *testing.B) {
				br, qs := env.index(name, benchScale, sel)
				z := br.Index.(*core.ZIndex)
				before := *z.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = z.RangeQuery(qs[i%len(qs)])
				}
				b.StopTimer()
				d := z.Stats().Diff(before)
				n := float64(b.N)
				b.ReportMetric(float64(d.ExcessPoints())/n, "excess-points/op")
				b.ReportMetric(float64(d.BBChecked)/n, "bbs-checked/op")
				b.ReportMetric(float64(d.PagesScanned)/n, "pages-scanned/op")
			})
		}
	}
}

// ---- Ablation benches for the design choices called out in DESIGN.md ----

// BenchmarkAblationAlpha sweeps the skip discount α of the cost model.
func BenchmarkAblationAlpha(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, alpha := range []float64{1e-5, 1e-3, 0.1, 0.5} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			z, err := core.BuildWaZI(w.Data, qs[:half], core.Options{
				LeafSize: benchCfg.LeafSize, Seed: 1, Alpha: alpha,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchRange(b, z, qs[half:])
		})
	}
}

// BenchmarkAblationKappa sweeps the candidate-split sample count κ,
// reporting build time as a metric next to query latency.
func BenchmarkAblationKappa(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, kappa := range []int{4, 16, 32, 64} {
		b.Run(fmt.Sprintf("kappa=%d", kappa), func(b *testing.B) {
			start := time.Now()
			z, err := core.BuildWaZI(w.Data, qs[:half], core.Options{
				LeafSize: benchCfg.LeafSize, Seed: 1, Kappa: kappa,
			})
			if err != nil {
				b.Fatal(err)
			}
			build := time.Since(start)
			benchRange(b, z, qs[half:])
			b.ReportMetric(build.Seconds(), "build-sec")
		})
	}
}

// BenchmarkAblationEstimator compares RFDE-driven construction against
// exact counting.
func BenchmarkAblationEstimator(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, exact := range []bool{false, true} {
		name := "rfde"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			start := time.Now()
			z, err := core.BuildWaZI(w.Data, qs[:half], core.Options{
				LeafSize: benchCfg.LeafSize, Seed: 1, ExactCounts: exact,
			})
			if err != nil {
				b.Fatal(err)
			}
			build := time.Since(start)
			benchRange(b, z, qs[half:])
			b.ReportMetric(build.Seconds(), "build-sec")
		})
	}
}

// BenchmarkAblationOrdering isolates the contribution of the acbd ordering
// freedom (§4.1) from split-point freedom.
func BenchmarkAblationOrdering(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, abcdOnly := range []bool{false, true} {
		name := "abcd+acbd"
		if abcdOnly {
			name = "abcd-only"
		}
		b.Run(name, func(b *testing.B) {
			z, err := core.BuildWaZI(w.Data, qs[:half], core.Options{
				LeafSize: benchCfg.LeafSize, Seed: 1, OrderABCDOnly: abcdOnly,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchRange(b, z, qs[half:])
		})
	}
}

// BenchmarkAblationLeafSize sweeps the page capacity L.
func BenchmarkAblationLeafSize(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	for _, leaf := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("L=%d", leaf), func(b *testing.B) {
			z, err := core.BuildWaZI(w.Data, qs[:half], core.Options{
				LeafSize: leaf, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchRange(b, z, qs[half:])
		})
	}
}

// BenchmarkShardedParallelRange compares the two serving layers under
// parallel clients: the single-mutex Concurrent wrapper against the
// lock-free fan-out Sharded layer (the waziexp "sharded" experiment in
// testing.B form). Run with -cpu to sweep client parallelism, e.g.
// go test -bench=ShardedParallel -cpu=1,4,16.
func BenchmarkShardedParallelRange(b *testing.B) {
	w := env.workload(benchScale)
	qs := w.BySelectivity[bench.MidSelectivity]
	half := len(qs) / 2
	single, err := wazi.NewWorkloadAware(w.Data, qs[:half], wazi.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	sharded, err := wazi.NewSharded(w.Data, qs[:half],
		wazi.WithShards(8), wazi.WithoutAutoRebuild(),
		wazi.WithIndexOptions(wazi.WithSeed(1)))
	if err != nil {
		b.Fatal(err)
	}
	defer sharded.Close()
	run := func(q func(geom.Rect) []geom.Point) func(b *testing.B) {
		return func(b *testing.B) {
			measure := qs[half:]
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					_ = q(measure[i%len(measure)])
					i++
				}
			})
		}
	}
	b.Run("Concurrent", run(wazi.NewConcurrent(single).RangeQuery))
	b.Run("Sharded", run(sharded.RangeQuery))
}

// BenchmarkScenarioSuites measures the Sharded serving layer under every
// named workload suite (the waziexp "scenarios" experiment in testing.B
// form): uniform, gaussian-skew, hotspot-shift, the mixed read/write
// ratios, and the adversarial anti-correlated ranges. The index is trained
// on the paper's skewed check-in workload; each suite then probes how that
// training generalizes.
func BenchmarkScenarioSuites(b *testing.B) {
	w := env.workload(benchScale)
	train := w.BySelectivity[bench.MidSelectivity][:400]
	inserts := workload.InsertBatch(100_000, 41)
	for _, s := range workload.Suites() {
		b.Run(s.Name, func(b *testing.B) {
			// A fresh index per suite: the write-heavy suites grow and
			// compact the index, which would skew later suites.
			sharded, err := wazi.NewSharded(w.Data, train,
				wazi.WithShards(8), wazi.WithoutAutoRebuild(),
				wazi.WithIndexOptions(wazi.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			defer sharded.Close()
			qs := s.Queries(dataset.NewYork, 512, bench.MidSelectivity, 31)
			ops := workload.MixedOps(qs, inserts, s.WriteRatio, 51)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := ops[i%len(ops)]
				if op.IsWrite {
					sharded.Insert(op.Point)
				} else {
					_ = sharded.RangeQuery(op.Query)
				}
			}
		})
	}
}

// BenchmarkKNN exercises the kNN-by-range-decomposition path (§6.3 remark).
func BenchmarkKNN(b *testing.B) {
	br, _ := env.index("WaZI", benchScale, bench.MidSelectivity)
	z := br.Index.(*core.ZIndex)
	pq := env.workload(benchScale).Points
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = z.KNN(pq[i%len(pq)], k)
			}
		})
	}
}
