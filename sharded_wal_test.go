package wazi

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

// walTestPoints builds a deterministic base dataset.
func walTestPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

// buildWALSharded builds a small Sharded with a WAL in dir.
func buildWALSharded(t *testing.T, pts []Point, dir string, extra ...ShardedOption) *Sharded {
	t.Helper()
	opts := append([]ShardedOption{
		WithShards(4), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
		WithWAL(dir), WithWALSync("group"),
	}, extra...)
	s, err := NewSharded(pts, nil, opts...)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return s
}

func TestWALColdRestartRecoversWrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	base := walTestPoints(500, 1)
	s := buildWALSharded(t, base, dir)
	rng := rand.New(rand.NewSource(2))
	logged := 0 // a Delete that finds nothing is not a write and is not logged
	for i := 0; i < 300; i++ {
		if i%5 == 4 {
			if s.Delete(base[rng.Intn(len(base))]) {
				logged++
			}
		} else {
			s.Insert(Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
			logged++
		}
	}
	wantSum, wantN := s.ContentChecksum()
	st := s.WALStats()
	if !st.Enabled || st.Appends != int64(logged) {
		t.Fatalf("wal stats: enabled=%v appends=%d, want enabled with %d appends", st.Enabled, st.Appends, logged)
	}
	if st.DurableSeq != st.LastSeq {
		t.Fatalf("acked writes not durable: durable %d < last %d", st.DurableSeq, st.LastSeq)
	}
	s.Close()

	// A cold restart over the same deterministic base must replay the
	// whole log and land on identical contents.
	r := buildWALSharded(t, base, dir)
	defer r.Close()
	rst := r.WALStats()
	if rst.RecoveredRecords != logged || rst.RecoveredTorn {
		t.Fatalf("recovered %d records (torn %v), want %d clean", rst.RecoveredRecords, rst.RecoveredTorn, logged)
	}
	gotSum, gotN := r.ContentChecksum()
	if gotSum != wantSum || gotN != wantN {
		t.Fatalf("recovered contents differ: checksum %x/%d points, want %x/%d", gotSum, gotN, wantSum, wantN)
	}
	// The replayed writes were not re-logged: appends since restart is 0.
	if rst.Appends != 0 {
		t.Fatalf("recovery re-logged %d records", rst.Appends)
	}
}

func TestWALSnapshotPlusTailRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	base := walTestPoints(500, 3)
	s := buildWALSharded(t, base, dir)
	rng := rand.New(rand.NewSource(4))
	write := func(n int) int {
		logged := 0
		for i := 0; i < n; i++ {
			if i%4 == 3 {
				if s.Delete(base[rng.Intn(len(base))]) {
					logged++
				}
			} else {
				s.Insert(Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
				logged++
			}
		}
		return logged
	}
	write(120)
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	tail := write(80) // the tail only the WAL holds
	wantSum, wantN := s.ContentChecksum()
	s.Close()

	r, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
		WithWAL(dir), WithWALSync("group"))
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	defer r.Close()
	rst := r.WALStats()
	if rst.RecoveredRecords != tail {
		t.Fatalf("recovered %d records past the snapshot cut, want %d", rst.RecoveredRecords, tail)
	}
	gotSum, gotN := r.ContentChecksum()
	if gotSum != wantSum || gotN != wantN {
		t.Fatalf("snapshot+tail recovery differs: checksum %x/%d points, want %x/%d", gotSum, gotN, wantSum, wantN)
	}
}

func TestWALTruncateAfterSave(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	base := walTestPoints(300, 5)
	// Tiny segments so the checkpoint has whole segments to drop.
	s := buildWALSharded(t, base, dir, WithWALSegmentBytes(256))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		s.Insert(Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	removed, err := s.TruncateWAL()
	if err != nil {
		t.Fatalf("TruncateWAL: %v", err)
	}
	if removed == 0 {
		t.Fatalf("TruncateWAL removed nothing despite 200 records in 256-byte segments")
	}
	// Writes after the checkpoint land in the surviving tail.
	for i := 0; i < 50; i++ {
		s.Insert(Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	wantSum, wantN := s.ContentChecksum()
	s.Close()

	r, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
		WithWAL(dir), WithWALSync("group"))
	if err != nil {
		t.Fatalf("LoadSharded after truncate: %v", err)
	}
	defer r.Close()
	if rst := r.WALStats(); rst.RecoveredRecords != 50 {
		t.Fatalf("recovered %d records after truncate, want 50", rst.RecoveredRecords)
	}
	gotSum, gotN := r.ContentChecksum()
	if gotSum != wantSum || gotN != wantN {
		t.Fatalf("post-truncate recovery differs: checksum %x/%d points, want %x/%d", gotSum, gotN, wantSum, wantN)
	}
}

func TestWALDisabledStatsAndTruncate(t *testing.T) {
	s, err := NewSharded(walTestPoints(100, 7), nil, WithShards(2), WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.WALStats(); st.Enabled {
		t.Fatal("WALStats claims a WAL without WithWAL")
	}
	if err := s.WALErr(); err != nil {
		t.Fatalf("WALErr without WAL: %v", err)
	}
	if n, err := s.TruncateWAL(); n != 0 || err != nil {
		t.Fatalf("TruncateWAL without WAL: %d, %v", n, err)
	}
}

func TestWALBadSyncPolicyFailsConstruction(t *testing.T) {
	_, err := NewSharded(walTestPoints(50, 8), nil, WithShards(2), WithoutAutoRebuild(),
		WithWAL(t.TempDir()), WithWALSync("flush-sometimes"))
	if err == nil {
		t.Fatal("unknown wal sync policy accepted")
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []string{"group", "always", "none"} {
		t.Run(policy, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			base := walTestPoints(200, 9)
			s := buildWALSharded(t, base, dir, WithWALSync(policy))
			rng := rand.New(rand.NewSource(10))
			for i := 0; i < 100; i++ {
				s.Insert(Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
			}
			wantSum, wantN := s.ContentChecksum()
			st := s.WALStats()
			if st.Sync != policy {
				t.Fatalf("WALStats.Sync = %q, want %q", st.Sync, policy)
			}
			if policy == "always" && st.Fsyncs < 100 {
				t.Fatalf("always policy fsynced %d times for 100 writes", st.Fsyncs)
			}
			s.Close()
			r := buildWALSharded(t, base, dir, WithWALSync(policy))
			defer r.Close()
			gotSum, gotN := r.ContentChecksum()
			if gotSum != wantSum || gotN != wantN {
				t.Fatalf("recovery under %q differs: %x/%d vs %x/%d", policy, gotSum, gotN, wantSum, wantN)
			}
		})
	}
}

func TestMultisetChecksumOrderIndependent(t *testing.T) {
	pts := walTestPoints(64, 11)
	pts = append(pts, pts[0], pts[1]) // duplicates count
	shuffled := append([]Point(nil), pts...)
	rand.New(rand.NewSource(12)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if MultisetChecksum(pts) != MultisetChecksum(shuffled) {
		t.Fatal("MultisetChecksum is order-dependent")
	}
	if MultisetChecksum(pts) == MultisetChecksum(pts[:len(pts)-1]) {
		t.Fatal("MultisetChecksum ignores a dropped duplicate")
	}
}
