package wazi

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/wazi-index/wazi/internal/indextest"
)

// The fault-injection harness: indextest.CrashFS kills the WAL's write
// path at every counted IO boundary (segment create, record write, fsync,
// segment remove, directory sync) in turn, under both the process-crash
// and power-loss models, and recovery must restore exactly the
// acknowledged writes — no loss, and no ghosts beyond the single
// in-flight operation a crash may legitimately persist without
// acknowledging.

type crashOp struct {
	p   Point
	del bool
}

// crashOpsFor mixes inserts of fresh points with deletes of base points.
func crashOpsFor(base []Point, n int, seed int64) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]crashOp, n)
	for i := range ops {
		if i%4 == 3 {
			ops[i] = crashOp{p: base[rng.Intn(len(base))], del: true}
		} else {
			ops[i] = crashOp{p: Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
		}
	}
	return ops
}

func countsOf(pts []Point) map[Point]int {
	m := make(map[Point]int, len(pts))
	for _, p := range pts {
		m[p]++
	}
	return m
}

// applyOpToCounts mirrors Sharded's write semantics on a plain multiset:
// a delete of an absent point is a no-op (and is never logged).
func applyOpToCounts(m map[Point]int, op crashOp) {
	if op.del {
		if m[op.p] > 0 {
			m[op.p]--
		}
	} else {
		m[op.p]++
	}
}

// shardedCounts materializes the full contents as a multiset.
func shardedCounts(s *Sharded) map[Point]int {
	m := make(map[Point]int)
	for _, ss := range s.snap.Load().shards {
		for _, p := range materialize(ss) {
			m[p]++
		}
	}
	return m
}

func countsEqual(a, b map[Point]int) bool {
	for p, n := range a {
		if n != 0 && b[p] != n {
			return false
		}
	}
	for p, n := range b {
		if n != 0 && a[p] != n {
			return false
		}
	}
	return true
}

// crashBuildOpts is the shared configuration of crashed and recovered
// instances; tiny segments force rotation and truncation kill points into
// the sweep.
func crashBuildOpts(dir, policy string, extra ...ShardedOption) []ShardedOption {
	return append([]ShardedOption{
		WithShards(4), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(64), WithSeed(7), WithExactCounts()),
		WithWAL(dir), WithWALSync(policy), WithWALSegmentBytes(384),
	}, extra...)
}

// runCrashSweep kills the write path at IO op k for every k until a run
// completes crash-free, asserting after each crash that recovery restores
// the acked prefix. A checkpoint (Save + TruncateWAL) midway through puts
// truncation's Remove/SyncDir boundaries inside the sweep and proves
// recovery from snapshot + truncated tail.
func runCrashSweep(t *testing.T, powerLoss, tear bool, policy string) {
	base := walTestPoints(300, 21)
	ops := crashOpsFor(base, 50, 22)
	const checkpointAt = 25
	for crashAt := 0; ; crashAt++ {
		if crashAt > 5000 {
			t.Fatal("crash sweep did not terminate: clean run never reached")
		}
		dir := filepath.Join(t.TempDir(), "wal")
		cfs := indextest.NewCrashFS(crashAt)
		cfs.PowerLoss, cfs.TearWrites = powerLoss, tear
		var snapBuf *bytes.Buffer
		applied := 0
		s, err := NewSharded(base, nil, crashBuildOpts(dir, policy, withWALFS(cfs))...)
		if err == nil {
			for i := range ops {
				if i == checkpointAt && s.WALErr() == nil {
					var buf bytes.Buffer
					if err := s.Save(&buf); err != nil {
						t.Fatalf("crashAt=%d: Save: %v", crashAt, err)
					}
					// The harness holds the snapshot in memory, which
					// models a durably persisted snapshot — so truncating
					// here honors the Save-truncation invariant even
					// though truncation itself may crash partway.
					s.TruncateWAL()
					snapBuf = &buf
				}
				if ops[i].del {
					s.Delete(ops[i].p)
				} else {
					s.Insert(ops[i].p)
				}
				if s.WALErr() != nil {
					break
				}
				applied++
			}
			s.Close()
		}
		crashed := cfs.Crashed()

		// Recover with the real filesystem: from the checkpoint snapshot
		// plus the log tail when one was taken, else cold rebuild plus
		// full replay.
		var r *Sharded
		var rerr error
		if snapBuf != nil {
			r, rerr = LoadSharded(bytes.NewReader(snapBuf.Bytes()), crashBuildOpts(dir, policy)...)
		} else {
			r, rerr = NewSharded(base, nil, crashBuildOpts(dir, policy)...)
		}
		if rerr != nil {
			t.Fatalf("crashAt=%d (applied %d): recovery failed: %v", crashAt, applied, rerr)
		}

		expected := countsOf(base)
		for _, op := range ops[:applied] {
			applyOpToCounts(expected, op)
		}
		got := shardedCounts(r)
		ok := countsEqual(got, expected)
		if !ok && applied < len(ops) {
			// The crash may have persisted the in-flight op's record
			// without acknowledging it — allowed; anything else is not.
			applyOpToCounts(expected, ops[applied])
			ok = countsEqual(got, expected)
		}
		r.Close()
		if !ok {
			t.Fatalf("crashAt=%d (applied %d, crashed %v): recovered contents are neither the acked prefix nor the prefix plus the in-flight op",
				crashAt, applied, crashed)
		}
		if !crashed {
			// crashAt moved past every IO op of a full run: the sweep hit
			// every kill point.
			if applied != len(ops) {
				t.Fatalf("clean run applied %d/%d ops", applied, len(ops))
			}
			return
		}
	}
}

func TestShardedCrashRecovery(t *testing.T) {
	t.Run("process-crash-torn-write/group", func(t *testing.T) {
		runCrashSweep(t, false, true, "group")
	})
	t.Run("power-loss-torn-write/group", func(t *testing.T) {
		runCrashSweep(t, true, true, "group")
	})
	t.Run("power-loss-clean-cut/always", func(t *testing.T) {
		runCrashSweep(t, true, false, "always")
	})
}

// TestShardedCrashRecoveryConcurrent crashes under concurrent writers:
// every write acknowledged to any goroutine must survive, and nothing may
// appear beyond each goroutine's single possible in-flight write. Run
// under -race in CI, this also proves the WAL ack path race-clean.
func TestShardedCrashRecoveryConcurrent(t *testing.T) {
	base := walTestPoints(300, 31)
	const writers, perWriter = 4, 20
	for _, crashAt := range []int{3, 17, 60, 120} {
		t.Run(fmt.Sprintf("crashAt=%d", crashAt), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			cfs := indextest.NewCrashFS(crashAt)
			cfs.PowerLoss, cfs.TearWrites = true, true
			s, err := NewSharded(base, nil, crashBuildOpts(dir, "group", withWALFS(cfs))...)
			attempted := make([][]Point, writers)
			acked := make([][]Point, writers)
			if err == nil {
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(100 + g)))
						for i := 0; i < perWriter; i++ {
							p := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
							attempted[g] = append(attempted[g], p)
							s.Insert(p)
							if s.WALErr() != nil {
								return
							}
							acked[g] = append(acked[g], p)
						}
					}(g)
				}
				wg.Wait()
				s.Close()
			}

			r, rerr := NewSharded(base, nil, crashBuildOpts(dir, "group")...)
			if rerr != nil {
				t.Fatalf("recovery failed: %v", rerr)
			}
			defer r.Close()
			got := shardedCounts(r)
			want := countsOf(base)
			for g := range acked {
				for _, p := range acked[g] {
					want[p]++
				}
			}
			inflight := make(map[Point]int)
			for g := range attempted {
				for _, p := range attempted[g][len(acked[g]):] {
					inflight[p]++
				}
			}
			for p, n := range want {
				if got[p] < n {
					t.Fatalf("lost acked write %v: recovered %d, want at least %d", p, got[p], n)
				}
			}
			for p, n := range got {
				if extra := n - want[p]; extra > 0 {
					if inflight[p] < extra {
						t.Fatalf("ghost write %v: recovered %d, acked %d, in-flight %d", p, n, want[p], inflight[p])
					}
				}
			}
		})
	}
}
