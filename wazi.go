// Package wazi implements WaZI, a learned and workload-aware variant of the
// Z-index for two-dimensional point data (Pai, Mathioudakis & Wang, EDBT
// 2024). A WaZI index jointly optimizes its storage layout and search
// structure for a given dataset and an anticipated range-query workload:
// the split point and child ordering of every node of the generalized
// Z-index are chosen to minimize a retrieval-cost model, and a look-ahead
// pointer mechanism skips runs of irrelevant pages during range scans.
//
// Basic usage:
//
//	idx, err := wazi.NewWorkloadAware(points, anticipatedQueries)
//	if err != nil { ... }
//	hits := idx.RangeQuery(wazi.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.3})
//
// Without a workload, New builds the classic (median-split, "abcd"-ordered)
// base Z-index, which is still a competent workload-agnostic spatial index
// and is the Base baseline of the paper's evaluation.
//
// The index supports range, point, and k-nearest-neighbour queries, point
// inserts and deletes, serialization (Save/Load), and detailed access
// statistics for performance analysis. For concurrent use, wrap it in a
// Concurrent index — or, for parallel serving at scale, partition the data
// across per-shard indexes with Sharded, which adds fan-out query
// execution and zero-downtime drift-triggered rebuilds on top.
package wazi

import (
	"io"
	"os"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Point is a location in the two-dimensional data space.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle; range queries are Rects.
type Rect = geom.Rect

// Stats holds cumulative access counters (pages scanned, bounding boxes
// checked, points filtered, look-ahead jumps, block-cache hits/misses/
// evictions, ...).
type Stats = storage.Stats

// CacheStats holds the block-cache counters of a disk-resident index.
type CacheStats = storage.CacheStats

// ErrNoPoints is returned when an index is built over an empty dataset.
var ErrNoPoints = core.ErrNoPoints

// NewRect returns the rectangle spanned by two opposite corners.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// Index is a built Z-index instance — either workload-aware (WaZI) or the
// base variant. Queries may run from multiple goroutines as long as no
// Insert or Delete runs concurrently; for mixed read/write concurrency see
// Concurrent and Sharded.
type Index struct {
	z *core.ZIndex
}

// config collects option values before they are translated to the internal
// build options.
type config struct {
	leafSize    int
	kappa       int
	alpha       float64
	noSkipping  bool
	seed        int64
	exactCounts bool
	storage     Storage
}

// Storage selects the page-store backend holding an index's clustered leaf
// pages. The zero value is the RAM-resident default (the pre-existing
// behavior). Setting Path selects the disk-resident backend: leaf pages
// live in a page file at Path (created by builds, truncating previous
// content) behind a workload-aware block cache, so the index's memory
// footprint is the tree plus the cache rather than the full dataset. See
// docs/STORAGE.md.
type Storage struct {
	// Path of the page file. Empty selects the RAM-resident backend.
	Path string
	// CachePages bounds the block cache in pages (default 1024).
	CachePages int
	// DisableMmap forces the disk backend's pread+decode read path instead
	// of zero-copy mapped page views (the default wherever the platform
	// supports them). See docs/STORAGE.md.
	DisableMmap bool
}

// Option customizes index construction.
type Option func(*config)

// WithLeafSize sets the page capacity L (default 256, as in the paper).
func WithLeafSize(n int) Option { return func(c *config) { c.leafSize = n } }

// WithCandidates sets κ, the number of candidate split points sampled per
// cell during workload-aware construction (default 32).
func WithCandidates(kappa int) Option { return func(c *config) { c.kappa = kappa } }

// WithAlpha overrides the skip-discount α of the retrieval-cost model. The
// default is 1e-5 with skipping enabled and 0.1 without, following §5.2.
func WithAlpha(alpha float64) Option { return func(c *config) { c.alpha = alpha } }

// WithoutSkipping disables construction and use of look-ahead pointers.
// Queries fall back to next-pointer scanning with bounding-box checks.
func WithoutSkipping() Option { return func(c *config) { c.noSkipping = true } }

// WithSeed fixes the seed of the randomized construction steps (candidate
// sampling, density-estimator splits), making builds reproducible.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithExactCounts replaces the learned density estimator with exact
// counting during construction: slower builds, noise-free cost evaluation.
func WithExactCounts() Option { return func(c *config) { c.exactCounts = true } }

// WithStorage selects the page-store backend (see Storage). Pass a Storage
// with a non-empty Path for the disk-resident backend:
//
//	idx, err := wazi.NewWorkloadAware(pts, qs,
//	    wazi.WithStorage(wazi.Storage{Path: "idx.pages", CachePages: 4096}))
//
// Indexes with disk storage should be Closed when done.
func WithStorage(s Storage) Option { return func(c *config) { c.storage = s } }

func buildOptions(opts []Option) core.Options {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return core.Options{
		LeafSize:           c.leafSize,
		Kappa:              c.kappa,
		Alpha:              c.alpha,
		DisableSkipping:    c.noSkipping,
		Seed:               c.seed,
		ExactCounts:        c.exactCounts,
		StoragePath:        c.storage.Path,
		StorageCachePages:  c.storage.CachePages,
		StorageDisableMmap: c.storage.DisableMmap,
	}
}

// New builds the base Z-index over points: median splits and "abcd"
// ordering everywhere, with look-ahead pointers enabled.
func New(points []Point, opts ...Option) (*Index, error) {
	z, err := core.BuildBase(points, buildOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Index{z: z}, nil
}

// NewWorkloadAware builds a WaZI index: construction greedily chooses each
// node's split point and child ordering to minimize the retrieval cost of
// the anticipated workload (Algorithm 3 of the paper). The workload can be
// historical query logs or representative queries; an empty workload
// degrades to the base configuration.
func NewWorkloadAware(points []Point, workload []Rect, opts ...Option) (*Index, error) {
	z, err := core.BuildWaZI(points, workload, buildOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Index{z: z}, nil
}

// Load restores an index previously written with Save. Options may select
// a storage backend for the restored pages (WithStorage with a Path loads
// the snapshot into a fresh page file — the cold migration path between
// backends; pass the snapshot's WithLeafSize too so disk slots are sized
// to its leaves). Other options are ignored, since the snapshot fixes the
// build-time configuration.
func Load(r io.Reader, opts ...Option) (*Index, error) {
	o := buildOptions(opts)
	st, err := o.OpenStore()
	if err != nil {
		return nil, err
	}
	z, err := core.LoadWithStore(r, st)
	if err != nil {
		st.Close()
		if ds, ok := st.(*storage.DiskStore); ok {
			// Don't leave the freshly truncated page file behind a failed
			// load at the user's path.
			os.Remove(ds.Path())
		}
		return nil, err
	}
	return &Index{z: z}, nil
}

// Save serializes the index so it can be rebuilt offline once and deployed
// with Load — the deployment model §6.5 recommends for WaZI. The snapshot
// embeds the leaf pages and is portable across storage backends.
func (x *Index) Save(w io.Writer) error { return x.z.Save(w) }

// Close releases the index's storage backend (the page file of a
// disk-resident index). It is a no-op for the default RAM-resident backend.
// The index must not be used after Close.
func (x *Index) Close() error { return x.z.Close() }

// CacheStats returns the block-cache counters of a disk-resident index
// (zero-valued except Resident/Capacity for the RAM backend).
func (x *Index) CacheStats() CacheStats { return x.z.CacheStats() }

// DropCaches empties the block cache of a disk-resident index (a no-op for
// the RAM backend), putting it in the state a cold start would see.
func (x *Index) DropCaches() { x.z.DropCaches() }

// RangeQuery returns all indexed points inside the closed rectangle r.
func (x *Index) RangeQuery(r Rect) []Point { return x.z.RangeQuery(r) }

// RangeQueryAppend appends the points inside r to dst, avoiding per-query
// allocations for callers that reuse buffers.
func (x *Index) RangeQueryAppend(dst []Point, r Rect) []Point {
	return x.z.RangeQueryAppend(dst, r)
}

// RangeCount returns the number of points inside r without materializing
// them.
func (x *Index) RangeCount(r Rect) int { return x.z.RangeCount(r) }

// PointQuery reports whether a point equal to p is indexed.
func (x *Index) PointQuery(p Point) bool { return x.z.PointQuery(p) }

// KNN returns the k points nearest to q, closest first, by decomposing the
// query into range queries (§6.3 of the paper). Equidistant neighbours are
// ordered by (distance, X, Y).
func (x *Index) KNN(q Point, k int) []Point { return x.z.KNN(q, k) }

// KNNAppend appends the k points nearest to q to dst, closest first,
// avoiding per-query allocations for callers that reuse buffers.
func (x *Index) KNNAppend(dst []Point, q Point, k int) []Point {
	return x.z.KNNAppend(dst, q, k)
}

// Insert adds p to the index.
func (x *Index) Insert(p Point) { x.z.Insert(p) }

// Delete removes one point equal to p, reporting whether one was found.
func (x *Index) Delete(p Point) bool { return x.z.Delete(p) }

// Len returns the number of indexed points.
func (x *Index) Len() int { return x.z.Len() }

// Bounds returns the data-space rectangle covered by the index.
func (x *Index) Bounds() Rect { return x.z.Bounds() }

// Bytes returns the approximate in-memory footprint, including data pages.
func (x *Index) Bytes() int64 { return x.z.Bytes() }

// Stats returns the live cumulative access counters. Reset them between
// measurement windows with Stats().Reset().
func (x *Index) Stats() *Stats { return x.z.Stats() }

// WorkloadAware reports whether the index was built by NewWorkloadAware.
func (x *Index) WorkloadAware() bool { return x.z.WorkloadAware() }

// Describe returns a one-line human-readable summary.
func (x *Index) Describe() string { return x.z.Describe() }

// Points returns a copy of all indexed points in storage order; useful as
// input to a rebuild after workload drift.
func (x *Index) Points() []Point { return x.z.Points() }

// WorkloadCost evaluates the paper's retrieval-cost model (Eq. 3) for a
// workload against this index's layout: the expected number of points
// touched per the model, with skipped pages discounted by alpha. Lower is
// better. It is the quantity WaZI's construction minimizes, exposed for
// monitoring and rebuild decisions.
func (x *Index) WorkloadCost(workload []Rect, alpha float64) float64 {
	return x.z.WorkloadCost(workload, alpha)
}
